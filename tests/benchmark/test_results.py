"""Tests for the resumable result store and its JSONL journal."""

import json

import pytest

from repro.benchmark import (
    JournalWriter,
    ResultStore,
    RunRecord,
    write_legacy_store,
)


def make_record(repetition=0, repair="impute_mean_dummy", metrics=None):
    return RunRecord(
        dataset="german",
        error_type="missing_values",
        detection="missing_values",
        repair=repair,
        model="log_reg",
        repetition=repetition,
        tuning_seed=0,
        metrics=metrics or {"dirty_test_acc": 0.7},
    )


def test_key_is_deterministic():
    assert make_record().key == (
        "german/missing_values/missing_values/impute_mean_dummy/log_reg/rep0/seed0"
    )


def test_add_and_get():
    store = ResultStore()
    record = make_record()
    store.add(record)
    assert store.get(record.key) == record
    assert record.key in store
    assert len(store) == 1


def test_duplicate_key_rejected():
    store = ResultStore()
    store.add(make_record())
    with pytest.raises(ValueError, match="duplicate"):
        store.add(make_record())


def test_get_unknown_key():
    with pytest.raises(KeyError):
        ResultStore().get("nope")


def test_records_filtering():
    store = ResultStore()
    store.add(make_record(repetition=0))
    store.add(make_record(repetition=1))
    store.add(make_record(repetition=0, repair="impute_mode_mode"))
    assert len(list(store.records(repair="impute_mean_dummy"))) == 2
    assert len(list(store.records(repetition=1))) == 1
    assert len(list(store.records())) == 3


def test_records_unknown_filter():
    with pytest.raises(ValueError, match="unknown filters"):
        list(ResultStore().records(flavour="spicy"))


def test_distinct():
    store = ResultStore()
    store.add(make_record(repetition=0))
    store.add(make_record(repetition=1))
    assert store.distinct("repetition") == [0, 1]


def test_save_and_reload_roundtrip(tmp_path):
    path = tmp_path / "results.json"
    store = ResultStore(path)
    store.add(make_record(metrics={"dirty_test_acc": 0.71, "nested": {"a": 1}}))
    store.save()
    reloaded = ResultStore(path)
    assert len(reloaded) == 1
    record = reloaded.get(make_record().key)
    assert record.metrics["dirty_test_acc"] == 0.71
    assert record.metrics["nested"] == {"a": 1}


def test_save_without_path_raises():
    with pytest.raises(RuntimeError, match="path"):
        ResultStore().save()


def test_resume_skips_existing_keys(tmp_path):
    path = tmp_path / "results.json"
    store = ResultStore(path)
    store.add(make_record())
    store.save()
    resumed = ResultStore(path)
    assert make_record().key in resumed


def test_stable_key_value_mapping_across_reload(tmp_path):
    """The reproducibility property the paper fixed in CleanML: the
    mapping between cleaning-technique keys and metric values must
    survive persistence unchanged."""
    path = tmp_path / "results.json"
    store = ResultStore(path)
    metrics = {
        "impute_mean_dummy_test_acc": 0.7,
        "impute_mode_mode_test_acc": 0.6,
        "dirty_test_acc": 0.65,
    }
    store.add(make_record(metrics=metrics))
    store.save()
    reloaded = ResultStore(path).get(make_record().key)
    assert reloaded.metrics == metrics


def test_json_roundtrip_of_record():
    record = make_record()
    assert RunRecord.from_json(record.to_json()) == record


# -- JSONL journal ------------------------------------------------------


def test_journal_replayed_on_load(tmp_path):
    path = tmp_path / "study.json"
    with ResultStore(path).journal_writer() as journal:
        journal.write(make_record(repetition=0))
        journal.write(make_record(repetition=1))
    assert journal.path == tmp_path / "study.jsonl"
    store = ResultStore(path)
    assert len(store) == 2
    assert make_record(repetition=1).key in store


def test_journal_shards_replayed_alongside_compacted_json(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    store.add(make_record(repetition=0))
    store.save()
    with store.journal_writer(shard="w1") as journal:
        journal.write(make_record(repetition=1))
    with store.journal_writer(shard="w2") as journal:
        journal.write(make_record(repetition=2))
    reloaded = ResultStore(path)
    assert len(reloaded) == 3
    assert {r.repetition for r in reloaded.records()} == {0, 1, 2}


def test_journal_replay_skips_already_compacted_records(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    record = make_record(metrics={"dirty_test_acc": 0.9})
    store.add(record)
    store.save()
    # a stale shard holding the same key with different metrics must not
    # override the compacted record
    with store.journal_writer(shard="stale") as journal:
        journal.write(make_record(metrics={"dirty_test_acc": 0.1}))
    reloaded = ResultStore(path)
    assert len(reloaded) == 1
    assert reloaded.get(record.key).metrics["dirty_test_acc"] == 0.9


def test_journal_replay_tolerates_truncated_trailing_line(tmp_path):
    path = tmp_path / "study.json"
    with ResultStore(path).journal_writer() as journal:
        journal.write(make_record(repetition=0))
    # simulate a writer killed mid-line
    with (tmp_path / "study.jsonl").open("a") as handle:
        handle.write(json.dumps(make_record(repetition=1).to_json())[:25])
    store = ResultStore(path)
    assert len(store) == 1
    assert make_record(repetition=0).key in store


def test_save_compacts_journal_shards(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    with store.journal_writer(shard="w7") as journal:
        journal.write(make_record(repetition=5))
    store = ResultStore(path)
    assert store.journal_paths() != []
    store.save()
    assert store.journal_paths() == []
    assert list(tmp_path.glob("*.jsonl")) == []
    # compacted records survive the shard removal
    assert make_record(repetition=5).key in ResultStore(path)


def test_journal_writer_requires_backing_path():
    with pytest.raises(RuntimeError, match="path"):
        ResultStore().journal_writer()


def test_journal_writer_appends_across_instances(tmp_path):
    shard = tmp_path / "study.w1.jsonl"
    with JournalWriter(shard) as journal:
        journal.write(make_record(repetition=0))
    with JournalWriter(shard) as journal:
        journal.write(make_record(repetition=1))
    assert len(shard.read_text().strip().splitlines()) == 2


def test_records_sorted_view_stays_correct_across_adds():
    """The cached sorted view must invalidate on every add."""
    store = ResultStore()
    store.add(make_record(repetition=1))
    assert [r.repetition for r in store.records()] == [1]
    store.add(make_record(repetition=0))
    assert [r.repetition for r in store.records()] == [0, 1]
    store.add(make_record(repetition=2))
    assert [r.repetition for r in store.records()] == [0, 1, 2]


# -- crash-safety regressions -------------------------------------------


def test_journal_writer_closes_on_propagating_exception(tmp_path):
    """A crash inside the ``with`` block must still flush and close the
    shard so the journaled lines survive the worker's death."""
    shard = tmp_path / "study.w1.jsonl"
    with pytest.raises(RuntimeError, match="boom"):
        with JournalWriter(shard) as journal:
            journal.write(make_record(repetition=0))
            raise RuntimeError("boom")
    assert journal.closed
    assert len(shard.read_text().splitlines()) == 1


def test_journal_writer_close_is_idempotent(tmp_path):
    journal = JournalWriter(tmp_path / "study.w1.jsonl")
    journal.write(make_record())
    journal.close()
    journal.close()
    assert journal.closed


def test_journal_fsync_option_smoke(tmp_path):
    shard = tmp_path / "study.w1.jsonl"
    with JournalWriter(shard, fsync=True) as journal:
        journal.write(make_record(repetition=0))
        journal.write(make_record(repetition=1))
    assert len(shard.read_text().splitlines()) == 2


def test_journal_append_after_torn_tail_starts_fresh_line(tmp_path):
    """Appending to a shard whose last write was torn mid-line must not
    glue the new record onto the partial one."""
    shard = tmp_path / "study.w1.jsonl"
    with JournalWriter(shard) as journal:
        journal.write(make_record(repetition=0))
    with shard.open("a") as handle:
        handle.write('{"dataset": "ger')  # torn write, no newline
    with JournalWriter(shard) as journal:
        journal.write(make_record(repetition=1))
    lines = shard.read_text().splitlines()
    assert len(lines) == 3
    assert json.loads(lines[2])["repetition"] == 1


def test_save_failure_preserves_existing_file(tmp_path):
    """An exception mid-save must leave the previous compacted file
    untouched and no temp file behind (atomic temp-file + rename)."""
    path = tmp_path / "study.json"
    store = ResultStore(path)
    store.add(make_record(repetition=0))
    store.save()
    before = path.read_bytes()
    broken = ResultStore(path)
    broken.add(make_record(repetition=1, metrics={"bad": object()}))
    with pytest.raises(TypeError):
        broken.save()
    assert path.read_bytes() == before
    assert list(tmp_path.glob("*.tmp")) == []


def test_save_replays_journal_before_deleting_shards(tmp_path):
    """Records living only in shards must survive compaction even when
    the saving store never loaded them itself."""
    path = tmp_path / "study.json"
    seed = ResultStore(path)
    with seed.journal_writer(shard="w1") as journal:
        journal.write(make_record(repetition=0))
    store = ResultStore()  # in-memory: has not replayed the shard
    store._path = path
    store.save()
    assert list(tmp_path.glob("*.jsonl")) == []
    assert make_record(repetition=0).key in ResultStore(path)


# -- store verification --------------------------------------------------


def test_verify_clean_store(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    with store.journal_writer(shard="w1") as journal:
        journal.write(make_record(repetition=0))
    store = ResultStore(path)
    assert store.verify() == []
    store.save()
    assert store.verify() == []


def test_verify_in_memory_store_is_trivially_clean():
    assert ResultStore().verify() == []


def test_verify_flags_checksum_mismatch(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    with store.journal_writer(shard="w1") as journal:
        journal.write(make_record(repetition=0))
    shard = path.with_name("study.w1.jsonl")
    payload = json.loads(shard.read_text())
    payload["metrics"]["dirty_test_acc"] = 0.99  # bit-rot the payload
    shard.write_text(json.dumps(payload) + "\n")
    violations = ResultStore(path).verify()
    assert any("checksum mismatch" in violation for violation in violations)


def test_verify_flags_duplicate_compacted_keys(tmp_path):
    path = tmp_path / "study.json"
    record = make_record(repetition=0)
    write_legacy_store(path, [record])
    compacted = json.loads(path.read_text())
    compacted["records"].append(compacted["records"][0])
    path.write_text(json.dumps(compacted))
    violations = ResultStore(path).verify()
    assert any("duplicate key" in violation for violation in violations)


def test_verify_flags_conflicting_payloads(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    with store.journal_writer(shard="w1") as journal:
        journal.write(make_record(repetition=0, metrics={"dirty_test_acc": 0.1}))
    with store.journal_writer(shard="w2") as journal:
        journal.write(make_record(repetition=0, metrics={"dirty_test_acc": 0.9}))
    violations = ResultStore(path).verify()
    assert any("conflicting payloads" in violation for violation in violations)


def test_verify_tolerates_identical_rejournaled_copies(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    with store.journal_writer(shard="w1") as journal:
        journal.write(make_record(repetition=0))
        journal.write(make_record(repetition=0))
    assert ResultStore(path).verify() == []


def test_verify_flags_orphan_shard(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    with store.journal_writer(shard="w1") as journal:
        journal.write(make_record(repetition=0))
    store = ResultStore(path)
    store.save()
    # resurrect the shard as if cleanup died between rename and unlink
    with ResultStore(path).journal_writer(shard="w1") as journal:
        journal.write(make_record(repetition=0))
    violations = ResultStore(path).verify()
    assert any("orphan shard" in violation for violation in violations)


def test_verify_tolerates_torn_trailing_line(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    with store.journal_writer(shard="w1") as journal:
        journal.write(make_record(repetition=0))
    with path.with_name("study.w1.jsonl").open("a") as handle:
        handle.write('{"torn": ')
    assert ResultStore(path).verify() == []


def test_verify_flags_undecodable_interior_line(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    shard = path.with_name("study.w1.jsonl")
    shard.write_text("!!garbage!!\n")
    with ResultStore(path).journal_writer(shard="w1") as journal:
        journal.write(make_record(repetition=0))
    violations = ResultStore(path).verify()
    assert any("undecodable" in violation for violation in violations)


def test_verify_flags_poisoned_failures_sidecar(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    store.add(make_record(repetition=0))
    store.save()
    store.failures_path.write_text('{"dataset": "german", "error": "boom"}\n')
    violations = ResultStore(path).verify()
    assert any("poisoned" in violation for violation in violations)
