"""Tests for the Section VI deep dive and the fairness-aware selector."""

import numpy as np

from repro.benchmark import DeepDive, FairnessAwareSelector
from repro.stats.impact import Impact
from tests.benchmark.test_impact_matrix import make_impact


def build_impacts():
    return [
        make_impact(
            fairness=Impact.WORSE,
            accuracy=Impact.BETTER,
            repair="impute_mean_mode",
        ),
        make_impact(
            fairness=Impact.BETTER,
            accuracy=Impact.BETTER,
            repair="impute_mean_dummy",
        ),
        make_impact(
            fairness=Impact.INSIGNIFICANT,
            accuracy=Impact.WORSE,
            repair="impute_mode_dummy",
            model="knn",
        ),
        make_impact(
            fairness=Impact.WORSE,
            accuracy=Impact.WORSE,
            dataset="adult",
            group_key="race",
            error_type="outliers",
            detection="outliers_iqr",
            repair="repair_outliers_mean",
            model="xgboost",
        ),
    ]


def test_cases_grouping():
    cases = DeepDive(build_impacts()).cases()
    # two distinct cases: (PP, german, sex, missing_values) and
    # (PP, adult, race, outliers)
    assert len(cases) == 2
    german_case = next(c for c in cases if c.dataset == "german")
    assert german_case.n_configurations == 3
    assert german_case.has_non_worsening
    assert german_case.has_fairness_improving
    assert german_case.has_win_win


def test_case_without_beneficial_technique():
    cases = DeepDive(build_impacts()).cases()
    adult_case = next(c for c in cases if c.dataset == "adult")
    assert not adult_case.has_non_worsening
    assert not adult_case.has_fairness_improving
    assert not adult_case.has_win_win


def test_case_counts():
    counts = DeepDive(build_impacts()).case_counts()
    assert counts == {
        "total": 2,
        "non_worsening": 1,
        "fairness_improving": 1,
        "win_win": 1,
    }


def test_fairness_improvements_by_repair():
    improvements = DeepDive(build_impacts()).fairness_improvements_by_repair()
    assert improvements == {"impute_mean_dummy": 1}


def test_dummy_vs_mode_imputation():
    comparison = DeepDive(build_impacts()).dummy_vs_mode_imputation()
    assert comparison == {"dummy": 1, "other": 0}


def test_detection_worsening_rates():
    rates = DeepDive(build_impacts()).detection_worsening_rates()
    assert rates["outliers_iqr"] == 1.0
    assert rates["missing_values"] == 1 / 3


def test_model_summaries():
    summaries = DeepDive(build_impacts()).model_summaries()
    by_name = {s.model: s for s in summaries}
    assert by_name["log_reg"].n_configurations == 2
    assert by_name["log_reg"].fairness_worse == 1
    assert by_name["log_reg"].fairness_better == 1
    assert by_name["log_reg"].both_better == 1
    assert by_name["xgboost"].fairness_worse_fraction == 1.0


def test_accuracy_leaderboard_picks_best_model():
    impacts = [
        make_impact(mean_clean_accuracy=0.70, model="knn"),
        make_impact(mean_clean_accuracy=0.75, model="log_reg"),
        make_impact(mean_clean_accuracy=0.72, model="xgboost"),
    ]
    leaderboard = DeepDive(impacts).accuracy_leaderboard()
    assert leaderboard[("german", "missing_values")] == "log_reg"


def test_selector_prefers_fairness_improving():
    selector = FairnessAwareSelector(build_impacts())
    recommendation = selector.recommend("german", "sex", "PP", "missing_values")
    assert recommendation is not None
    assert recommendation.repair == "impute_mean_dummy"
    assert recommendation.safe


def test_selector_unsafe_when_all_worsen():
    selector = FairnessAwareSelector(build_impacts())
    recommendation = selector.recommend("adult", "race", "PP", "outliers")
    assert recommendation is not None
    assert not recommendation.safe


def test_selector_unknown_case_returns_none():
    selector = FairnessAwareSelector(build_impacts())
    assert selector.recommend("heart", "sex", "PP", "outliers") is None


def test_selector_model_filter():
    selector = FairnessAwareSelector(build_impacts())
    recommendation = selector.recommend(
        "german", "sex", "PP", "missing_values", model="knn"
    )
    assert recommendation is not None
    assert recommendation.model == "knn"
    assert recommendation.repair == "impute_mode_dummy"


def test_selector_recommend_all_and_safety_rate():
    selector = FairnessAwareSelector(build_impacts())
    recommendations = selector.recommend_all()
    assert len(recommendations) == 2
    assert selector.safety_rate() == 0.5


def test_selector_empty_safety_rate_nan():
    assert np.isnan(FairnessAwareSelector([]).safety_rate())
