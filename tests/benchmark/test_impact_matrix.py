"""Unit tests for ImpactMatrix and ConfigurationImpact plumbing."""

import numpy as np
import pytest

from repro.benchmark.impact import (
    ConfigurationImpact,
    ImpactMatrix,
    _group_fragments,
)
from repro.stats.impact import Impact


def make_impact(fairness=Impact.BETTER, accuracy=Impact.WORSE, **overrides):
    defaults = dict(
        dataset="german",
        group_key="sex",
        metric_name="PP",
        model="log_reg",
        error_type="missing_values",
        detection="missing_values",
        repair="impute_mean_dummy",
        fairness_impact=fairness,
        accuracy_impact=accuracy,
        n_runs=6,
        mean_dirty_fairness=0.1,
        mean_clean_fairness=0.05,
        mean_dirty_accuracy=0.7,
        mean_clean_accuracy=0.72,
    )
    defaults.update(overrides)
    return ConfigurationImpact(**defaults)


def test_matrix_counts_and_total():
    matrix = ImpactMatrix()
    matrix.add(Impact.BETTER, Impact.WORSE)
    matrix.add(Impact.BETTER, Impact.WORSE)
    matrix.add(Impact.WORSE, Impact.BETTER)
    assert matrix.count(Impact.BETTER, Impact.WORSE) == 2
    assert matrix.total == 3


def test_matrix_marginals():
    matrix = ImpactMatrix()
    matrix.add(Impact.BETTER, Impact.WORSE)
    matrix.add(Impact.BETTER, Impact.BETTER)
    matrix.add(Impact.INSIGNIFICANT, Impact.BETTER)
    assert matrix.fairness_marginal(Impact.BETTER) == 2
    assert matrix.accuracy_marginal(Impact.BETTER) == 2
    assert matrix.fairness_marginal(Impact.WORSE) == 0


def test_matrix_fraction():
    matrix = ImpactMatrix()
    matrix.add(Impact.WORSE, Impact.WORSE)
    matrix.add(Impact.BETTER, Impact.BETTER)
    assert matrix.fraction(Impact.WORSE, Impact.WORSE) == pytest.approx(0.5)


def test_matrix_fraction_empty_is_nan():
    assert np.isnan(ImpactMatrix().fraction(Impact.WORSE, Impact.WORSE))


def test_group_fragments_single():
    assert _group_fragments("sex") == ("sex_priv", "sex_dis")


def test_group_fragments_intersectional():
    assert _group_fragments("sex_x_age") == (
        "sex_priv__age_priv",
        "sex_dis__age_dis",
    )


def test_configuration_impact_intersectional_flag():
    assert not make_impact().intersectional
    assert make_impact(group_key="sex_x_age").intersectional
