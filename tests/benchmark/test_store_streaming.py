"""Streaming and migration behaviour of the sharded result store."""

import json

import pytest

from repro.benchmark import ResultStore, RunRecord, write_legacy_store
from repro.benchmark import results as results_module


def make_record(dataset="german", error_type="mislabels", repetition=0, repair="flip_labels"):
    return RunRecord(
        dataset=dataset,
        error_type=error_type,
        detection="cleanlab",
        repair=repair,
        model="log_reg",
        repetition=repetition,
        tuning_seed=0,
        metrics={"dirty_test_acc": 0.7, f"{repair}_test_acc": 0.72},
    )


def multi_shard_store(path, n_groups=4, reps_per_group=3):
    """A saved store with ``n_groups`` (dataset, error_type) shards."""
    store = ResultStore(path)
    datasets = ("adult", "credit", "german", "heart")[:n_groups]
    for dataset in datasets:
        for repetition in range(reps_per_group):
            store.add(make_record(dataset=dataset, repetition=repetition))
    store.save()
    return datasets


class ShardOpenSpy:
    """Counts open shards and the maximum concurrently-open handles."""

    def __init__(self, real_open):
        self._real_open = real_open
        self.opens = []
        self.live = 0
        self.max_live = 0

    def __call__(self, path):
        handle = self._real_open(path)
        self.opens.append(path.name)
        self.live += 1
        self.max_live = max(self.max_live, self.live)
        spy = self
        original_close = handle.close

        def counted_close():
            if not handle.closed:
                spy.live -= 1
            original_close()

        handle.close = counted_close
        return handle


@pytest.fixture
def shard_spy(monkeypatch):
    spy = ShardOpenSpy(results_module.open_shard)
    monkeypatch.setattr(results_module, "open_shard", spy)
    return spy


def test_iter_records_streams_one_shard_at_a_time(tmp_path, shard_spy):
    path = tmp_path / "study.json"
    datasets = multi_shard_store(path, n_groups=4)
    store = ResultStore(path)
    seen = [record.key for record in store.iter_records()]
    assert len(seen) == 4 * 3
    assert seen == sorted(seen), "iter_records must yield global key order"
    assert len(shard_spy.opens) == 4, "each shard opened exactly once"
    assert shard_spy.max_live == 1, (
        "streaming must never hold more than one shard open"
    )
    assert [name.split("__")[0] for name in shard_spy.opens] == sorted(datasets)


def test_records_filter_skips_non_matching_shards(tmp_path, shard_spy):
    path = tmp_path / "study.json"
    multi_shard_store(path, n_groups=4)
    store = ResultStore(path)
    matched = list(store.records(dataset="german"))
    assert len(matched) == 3
    assert len(shard_spy.opens) == 1
    assert shard_spy.opens[0].startswith("german__mislabels.")


def test_get_loads_only_the_owning_shard(tmp_path, shard_spy):
    path = tmp_path / "study.json"
    multi_shard_store(path, n_groups=3)
    store = ResultStore(path)
    record = store.get(make_record(dataset="credit", repetition=1).key)
    assert record.dataset == "credit"
    assert len(shard_spy.opens) == 1
    assert shard_spy.opens[0].startswith("credit__")


def test_membership_and_len_never_open_shards(tmp_path, shard_spy):
    path = tmp_path / "study.json"
    multi_shard_store(path, n_groups=3)
    store = ResultStore(path)
    assert make_record(dataset="adult").key in store
    assert "nope/mislabels/x/y/z/rep0/seed0" not in store
    assert len(store) == 9
    assert store.distinct("dataset") == ["adult", "credit", "german"]
    assert store.distinct("error_type") == ["mislabels"]
    assert shard_spy.opens == []


def test_incremental_save_rewrites_only_dirty_shards(tmp_path):
    path = tmp_path / "study.json"
    multi_shard_store(path, n_groups=3)
    store_dir = tmp_path / "study.store"
    before = {p.name: p.stat().st_mtime_ns for p in store_dir.glob("*.jsonl.gz")}
    store = ResultStore(path)
    store.add(make_record(dataset="german", repetition=7))
    store.save()
    after = {p.name for p in store_dir.glob("*.jsonl.gz")}
    unchanged = {name for name in before if name in after}
    assert len(unchanged) == 2, "only the german shard should be replaced"
    assert all(name.startswith(("adult", "credit")) for name in unchanged)


def test_save_garbage_collects_replaced_shard_files(tmp_path):
    path = tmp_path / "study.json"
    multi_shard_store(path, n_groups=1)
    store = ResultStore(path)
    store.add(make_record(dataset="adult", repetition=9))
    store.save()
    shards = list((tmp_path / "study.store").glob("adult__*.jsonl.gz"))
    assert len(shards) == 1, "the superseded shard file must be removed"
    assert ResultStore(path).verify() == []


# -- legacy migration ---------------------------------------------------


def test_legacy_store_loads_and_verifies_clean(tmp_path):
    path = tmp_path / "study.json"
    records = [make_record(repetition=i) for i in range(3)]
    write_legacy_store(path, records)
    store = ResultStore(path)
    assert store.is_legacy
    assert len(store) == 3
    assert [r.key for r in store.iter_records()] == sorted(r.key for r in records)
    assert store.verify() == []


def test_save_migrates_legacy_store_to_sharded_layout(tmp_path):
    path = tmp_path / "study.json"
    write_legacy_store(
        path,
        [make_record(dataset=d, repetition=i) for d in ("adult", "german") for i in range(2)],
    )
    store = ResultStore(path)
    store.save()
    assert not store.is_legacy
    manifest = json.loads(path.read_text())
    assert manifest["format"] == "sharded-v1"
    assert len(manifest["shards"]) == 2
    reloaded = ResultStore(path)
    assert len(reloaded) == 4
    assert reloaded.verify() == []


def test_migrated_store_is_byte_identical_to_natively_sharded(tmp_path):
    records = [
        make_record(dataset=d, repetition=i)
        for d in ("adult", "german")
        for i in range(2)
    ]
    legacy_path = tmp_path / "legacy" / "study.json"
    legacy_path.parent.mkdir()
    write_legacy_store(legacy_path, records)
    migrated = ResultStore(legacy_path)
    migrated.save()

    native_path = tmp_path / "native" / "study.json"
    native_path.parent.mkdir()
    native = ResultStore(native_path)
    for record in records:
        native.add(record)
    native.save()

    assert legacy_path.read_bytes() == native_path.read_bytes()
    legacy_shards = sorted((tmp_path / "legacy" / "study.store").glob("*.jsonl.gz"))
    native_shards = sorted((tmp_path / "native" / "study.store").glob("*.jsonl.gz"))
    assert [p.name for p in legacy_shards] == [p.name for p in native_shards]
    for a, b in zip(legacy_shards, native_shards):
        assert a.read_bytes() == b.read_bytes()


def test_unrecognised_store_payload_is_rejected(tmp_path):
    path = tmp_path / "study.json"
    path.write_text(json.dumps({"format": "who-knows-v9"}))
    with pytest.raises(ValueError, match="neither"):
        ResultStore(path)


def test_verify_flags_shard_key_drift(tmp_path):
    """A shard whose manifest entry lists keys not on disk is flagged."""
    path = tmp_path / "study.json"
    multi_shard_store(path, n_groups=1)
    manifest = json.loads(path.read_text())
    manifest["shards"][0]["keys"].append(
        "adult/mislabels/cleanlab/flip_labels/log_reg/rep99/seed0"
    )
    path.write_text(json.dumps(manifest))
    violations = ResultStore(path).verify()
    assert any("disagree with manifest" in v for v in violations)


def test_verify_flags_missing_and_orphan_shard_files(tmp_path):
    path = tmp_path / "study.json"
    multi_shard_store(path, n_groups=2)
    store_dir = tmp_path / "study.store"
    shards = sorted(store_dir.glob("*.jsonl.gz"))
    orphan = store_dir / "zzz__outliers.deadbeef.jsonl.gz"
    shards[0].rename(orphan)
    violations = ResultStore(path).verify()
    assert any("missing shard file" in v for v in violations)
    assert any("orphan shard file" in v for v in violations)


def test_verify_flags_shard_crc_mismatch(tmp_path):
    path = tmp_path / "study.json"
    multi_shard_store(path, n_groups=1)
    manifest = json.loads(path.read_text())
    manifest["shards"][0]["crc"] = "00000000"
    # keep the file name pointing at the real shard
    path.write_text(json.dumps(manifest))
    violations = ResultStore(path).verify()
    assert any("CRC mismatch" in v for v in violations)
