"""Integration tests for the experiment runner (german, smoke scale)."""

import dataclasses

import numpy as np
import pytest

from repro.benchmark import ExperimentRunner, ImpactAnalysis, ResultStore, StudyConfig
from repro.benchmark.impact import fairness_value
from repro.fairness.metrics import equal_opportunity


@pytest.fixture(scope="module")
def german_store():
    store = ResultStore()
    config = StudyConfig.smoke_scale()
    runner = ExperimentRunner(config, store)
    runner.run_dataset_error("german", "missing_values", models=("log_reg",))
    runner.run_dataset_error("german", "outliers", models=("log_reg",))
    runner.run_dataset_error("german", "mislabels", models=("log_reg",))
    return store


def test_expected_record_counts(german_store):
    # 2 reps x 1 model x (6 MV repairs + 9 outlier combos + 1 mislabel)
    assert len(list(german_store.records(error_type="missing_values"))) == 12
    assert len(list(german_store.records(error_type="outliers"))) == 18
    assert len(list(german_store.records(error_type="mislabels"))) == 2


def test_records_contain_dirty_and_repair_metrics(german_store):
    record = next(german_store.records(error_type="missing_values"))
    assert "dirty_test_acc" in record.metrics
    assert f"{record.repair}_test_acc" in record.metrics
    assert "dirty_best_params" in record.metrics
    assert f"{record.repair}_test_f1" in record.metrics


def test_records_contain_group_confusions_for_all_specs(german_store):
    record = next(german_store.records(error_type="missing_values"))
    repair = record.repair
    # single-attribute: age and sex; intersectional: sex x age
    for fragment in ("age_priv", "age_dis", "sex_priv", "sex_dis",
                     "sex_priv__age_priv", "sex_dis__age_dis"):
        for cell in ("tn", "fp", "fn", "tp"):
            assert f"dirty__{fragment}__{cell}" in record.metrics
            assert f"{repair}__{fragment}__{cell}" in record.metrics


def test_grid_fast_path_study_records_byte_identical():
    """The ``score_grid`` kernels must not change a single study metric:
    a full repetition over all three models matches the naive loop."""

    def run(grid_fast_path):
        config = dataclasses.replace(
            StudyConfig.smoke_scale(),
            n_repetitions=1,
            grid_fast_path=grid_fast_path,
        )
        store = ResultStore()
        ExperimentRunner(config, store).run_dataset_error("german", "mislabels")
        return {record.key: record.metrics for record in store.records()}

    fast = run(True)
    naive = run(False)
    assert fast.keys() == naive.keys() and len(fast) > 0
    for key in naive:
        assert fast[key] == naive[key], key


def test_group_confusions_sum_to_group_sizes(german_store):
    record = next(german_store.records(error_type="outliers"))
    priv_total = sum(
        record.metrics[f"dirty__sex_priv__{cell}"]
        for cell in ("tn", "fp", "fn", "tp")
    )
    dis_total = sum(
        record.metrics[f"dirty__sex_dis__{cell}"]
        for cell in ("tn", "fp", "fn", "tp")
    )
    assert priv_total > 0 and dis_total > 0


def test_accuracies_are_probabilities(german_store):
    for record in german_store.records():
        assert 0.0 <= record.metrics["dirty_test_acc"] <= 1.0
        assert 0.0 <= record.metrics[f"{record.repair}_test_acc"] <= 1.0


def test_outlier_detection_names(german_store):
    detections = {r.detection for r in german_store.records(error_type="outliers")}
    assert detections == {"outliers_sd", "outliers_iqr", "outliers_if"}


def test_mislabel_repair_name(german_store):
    record = next(german_store.records(error_type="mislabels"))
    assert record.repair == "flip_labels"
    assert record.detection == "cleanlab"


def test_fairness_value_extraction(german_store):
    record = next(german_store.records(error_type="missing_values"))
    value = fairness_value(record, "dirty", "sex", equal_opportunity)
    assert np.isnan(value) or -1.0 <= value <= 1.0


def test_fairness_value_unknown_group_is_nan(german_store):
    record = next(german_store.records(error_type="missing_values"))
    assert np.isnan(fairness_value(record, "dirty", "ghost", equal_opportunity))


def test_impact_analysis_configuration_counts(german_store):
    analysis = ImpactAnalysis(german_store)
    impacts = analysis.configuration_impacts(
        "missing_values", "PP", intersectional=False
    )
    # 6 repairs x 1 model x 2 single-attribute groups
    assert len(impacts) == 12
    intersectional = analysis.configuration_impacts(
        "missing_values", "PP", intersectional=True
    )
    assert len(intersectional) == 6
    assert all(impact.intersectional for impact in intersectional)


def test_impact_matrix_total_matches_configurations(german_store):
    analysis = ImpactAnalysis(german_store)
    matrix = analysis.matrix("outliers", "EO", intersectional=False)
    # 9 combos x 1 model x 2 groups
    assert matrix.total == 18


def test_runner_resumes_without_duplicates(german_store):
    config = StudyConfig.smoke_scale()
    runner = ExperimentRunner(config, german_store)
    added = runner.run_dataset_error("german", "missing_values", models=("log_reg",))
    assert added == 0


def test_runner_rejects_unknown_error_type():
    runner = ExperimentRunner(StudyConfig.smoke_scale(), ResultStore())
    with pytest.raises(ValueError, match="error type"):
        runner.run_dataset_error("german", "typos")


def test_heart_skips_missing_values():
    runner = ExperimentRunner(StudyConfig.smoke_scale(), ResultStore())
    assert runner.run_dataset_error("heart", "missing_values") == 0


def test_runner_is_deterministic():
    def run():
        store = ResultStore()
        runner = ExperimentRunner(StudyConfig.smoke_scale(), store)
        runner.run_dataset_error("german", "mislabels", models=("log_reg",))
        return store

    a, b = run(), run()
    keys = [record.key for record in a.records()]
    assert keys == [record.key for record in b.records()]
    for key in keys:
        assert a.get(key).metrics == b.get(key).metrics
