"""Tests for ImpactAnalysis internals: key recovery and value extraction."""

import numpy as np

from repro.benchmark import ImpactAnalysis, ResultStore, RunRecord
from repro.benchmark.impact import fairness_value
from repro.fairness.metrics import predictive_parity
from repro.stats.impact import Impact


def make_record(repetition, dirty_counts, clean_counts, dirty_acc, clean_acc):
    """A record with sex-group confusion counts for dirty and repaired."""
    metrics = {"dirty_test_acc": dirty_acc, "impute_mean_dummy_test_acc": clean_acc}
    for technique, (priv, dis) in (
        ("dirty", dirty_counts),
        ("impute_mean_dummy", clean_counts),
    ):
        for fragment, counts in (("sex_priv", priv), ("sex_dis", dis)):
            for cell, count in zip(("tn", "fp", "fn", "tp"), counts):
                metrics[f"{technique}__{fragment}__{cell}"] = count
    return RunRecord(
        dataset="german",
        error_type="missing_values",
        detection="missing_values",
        repair="impute_mean_dummy",
        model="log_reg",
        repetition=repetition,
        tuning_seed=0,
        metrics=metrics,
    )


def build_store(n=10, improvement=True):
    """Dirty precision gap is large; clean gap small (or reversed)."""
    store = ResultStore()
    rng = np.random.default_rng(0)
    for repetition in range(n):
        jitter = int(rng.integers(0, 3))
        dirty = ((50, 10, 5, 40), (50, 2 + jitter, 5, 10))   # priv prec .8, dis ~.8+
        clean = ((50, 10, 5, 40), (50, 10 + jitter, 5, 40))  # closer precisions
        if not improvement:
            dirty, clean = clean, dirty
        store.add(
            make_record(
                repetition,
                dirty,
                clean,
                dirty_acc=0.70 + 0.001 * jitter,
                clean_acc=0.70 + 0.001 * jitter,
            )
        )
    return store


def test_fairness_value_matches_manual_computation():
    record = make_record(
        0,
        dirty_counts=((50, 10, 5, 40), (50, 2, 5, 10)),
        clean_counts=((50, 10, 5, 40), (50, 10, 5, 40)),
        dirty_acc=0.7,
        clean_acc=0.7,
    )
    value = fairness_value(record, "dirty", "sex", predictive_parity)
    priv_precision = 40 / 50
    dis_precision = 10 / 12
    assert value == priv_precision - dis_precision


def test_group_keys_recovered_from_metrics():
    store = build_store(n=1)
    analysis = ImpactAnalysis(store)
    impacts = analysis.configuration_impacts(
        "missing_values", "PP", intersectional=False
    )
    assert [impact.group_key for impact in impacts] == ["sex"]
    assert analysis.configuration_impacts(
        "missing_values", "PP", intersectional=True
    ) == []


def test_shrinking_gap_classified_better():
    analysis = ImpactAnalysis(build_store(improvement=True))
    (impact,) = analysis.configuration_impacts(
        "missing_values", "PP", intersectional=False
    )
    assert impact.fairness_impact is Impact.BETTER
    assert impact.mean_clean_fairness < impact.mean_dirty_fairness


def test_growing_gap_classified_worse():
    analysis = ImpactAnalysis(build_store(improvement=False))
    (impact,) = analysis.configuration_impacts(
        "missing_values", "PP", intersectional=False
    )
    assert impact.fairness_impact is Impact.WORSE


def test_identical_scores_classified_insignificant():
    store = ResultStore()
    for repetition in range(8):
        counts = ((50, 10, 5, 40), (50, 10, 5, 40))
        store.add(make_record(repetition, counts, counts, 0.7, 0.7))
    analysis = ImpactAnalysis(store)
    (impact,) = analysis.configuration_impacts(
        "missing_values", "PP", intersectional=False
    )
    assert impact.fairness_impact is Impact.INSIGNIFICANT
    assert impact.accuracy_impact is Impact.INSIGNIFICANT


def test_dataset_and_model_filters():
    analysis = ImpactAnalysis(build_store())
    assert (
        analysis.configuration_impacts(
            "missing_values", "PP", intersectional=False, datasets=("adult",)
        )
        == []
    )
    assert (
        analysis.configuration_impacts(
            "missing_values", "PP", intersectional=False, models=("knn",)
        )
        == []
    )
    assert (
        len(
            analysis.configuration_impacts(
                "missing_values",
                "PP",
                intersectional=False,
                datasets=("german",),
                models=("log_reg",),
            )
        )
        == 1
    )


def test_n_runs_recorded():
    analysis = ImpactAnalysis(build_store(n=7))
    (impact,) = analysis.configuration_impacts(
        "missing_values", "PP", intersectional=False
    )
    assert impact.n_runs == 7
