"""Store-level observability: trace sidecars, compaction and health.

Exercises :meth:`ResultStore.compact_trace`, :meth:`ResultStore.health`
and their interaction with :meth:`ResultStore.verify` on hand-built
on-disk states — mixed journal shards, a poisoned-unit sidecar and
crash-torn trace tails (via the chaos suite's fault helpers) — without
paying for a real study.
"""

import json

import pytest

from repro.benchmark import ResultStore, RunRecord
from repro.testing import truncate_tail


def make_record(repetition=0):
    return RunRecord(
        dataset="german",
        error_type="mislabels",
        detection="cleanlab",
        repair="flip_labels",
        model="log_reg",
        repetition=repetition,
        tuning_seed=0,
        metrics={"dirty_test_acc": 0.7},
    )


def write_events(path, events):
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


def span_event(name, seconds=0.1, **attrs):
    event = {"v": 1, "kind": "span", "name": name, "path": name, "seconds": seconds}
    if attrs:
        event["attrs"] = attrs
    return event


def counter_event(name, value, **labels):
    return {
        "v": 1,
        "kind": "metric",
        "type": "counter",
        "name": name,
        "labels": labels,
        "value": value,
    }


def test_health_of_untraced_store_is_empty(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    health = store.health()
    assert health.n_events == 0
    assert health.poisoned == 0
    assert ResultStore().health().n_events == 0  # in-memory store too


def test_untraced_store_health_is_explicitly_marked(tmp_path):
    """A --no-trace run yields an explicit "untraced" health object,
    not one indistinguishable from an idle traced run."""
    store = ResultStore(tmp_path / "study.json")
    store.add(make_record())
    store.save()
    health = store.health()
    assert health.untraced is True
    assert health.to_json()["untraced"] is True
    assert ResultStore().health().untraced is True
    # the moment trace events exist the marker clears
    write_events(tmp_path / "study.trace.jsonl", [span_event("unit")])
    assert store.health().untraced is False


def test_ledger_sidecar_never_counts_as_a_journal(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    store.add(make_record())
    store.save()
    (tmp_path / "study.ledger.jsonl").write_text(
        json.dumps({"kind": "run", "run_id": "abc", "audit": {}}) + "\n"
    )
    assert store.journal_paths() == []
    assert store.verify() == []


def test_trace_paths_main_first_then_sorted_shards(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    for name in ("study.trace.w9.jsonl", "study.trace.w10.jsonl"):
        write_events(tmp_path / name, [span_event("cell")])
    assert [p.name for p in store.trace_paths()] == [
        "study.trace.w10.jsonl",
        "study.trace.w9.jsonl",
    ]
    write_events(store.trace_path, [span_event("unit")])
    assert [p.name for p in store.trace_paths()] == [
        "study.trace.jsonl",
        "study.trace.w10.jsonl",
        "study.trace.w9.jsonl",
    ]


def test_journal_paths_exclude_trace_and_failures_sidecars(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    with store.journal_writer(shard="w1") as journal:
        journal.write(make_record())
    write_events(store.trace_path, [span_event("unit")])
    write_events(tmp_path / "study.trace.w1.jsonl", [span_event("cell")])
    (tmp_path / "study.failures.jsonl").write_text('{"dataset":"german"}\n')
    assert [p.name for p in store.journal_paths()] == ["study.w1.jsonl"]


def test_compact_trace_merges_shards_and_metrics(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    write_events(
        store.trace_path,
        [span_event("planned"), counter_event("timeouts", 1.0)],
    )
    write_events(
        tmp_path / "study.trace.w1.jsonl",
        [span_event("cell", model="log_reg"), counter_event("timeouts", 2.0)],
    )
    write_events(
        tmp_path / "study.trace.w2.jsonl",
        [counter_event("cache_hit", 3.0, cache="featurizer")],
    )
    n_events = store.compact_trace()
    assert n_events == 4  # 2 spans + 2 merged counters
    assert store.trace_paths() == [store.trace_path]
    events = [
        json.loads(line)
        for line in store.trace_path.read_text().splitlines()
    ]
    # span events first (shard order), merged metrics last
    assert [e["kind"] for e in events] == ["span", "span", "metric", "metric"]
    timeouts = [e for e in events if e.get("name") == "timeouts"]
    assert timeouts[0]["value"] == 3.0  # summed across parent + worker


def test_compact_trace_is_noop_without_shards(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    write_events(store.trace_path, [span_event("unit")])
    before = store.trace_path.read_bytes()
    assert store.compact_trace() == 0
    assert store.trace_path.read_bytes() == before
    assert ResultStore().compact_trace() == 0  # in-memory: nothing to do


def test_compact_trace_skips_torn_shard_tail(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    shard = tmp_path / "study.trace.w1.jsonl"
    write_events(shard, [span_event("cell"), span_event("tune")])
    truncate_tail(shard)  # crash-torn final line
    assert store.compact_trace() == 1
    (event,) = [
        json.loads(line)
        for line in store.trace_path.read_text().splitlines()
    ]
    assert event["name"] == "cell"


def test_save_compacts_trace_shards_with_journal_shards(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    with store.journal_writer(shard="w1") as journal:
        journal.write(make_record())
    write_events(
        tmp_path / "study.trace.w1.jsonl", [span_event("cell", model="log_reg")]
    )
    store = ResultStore(tmp_path / "study.json")  # replay the journal
    store.save()
    assert store.journal_paths() == []
    assert [p.name for p in store.trace_paths()] == ["study.trace.jsonl"]
    assert store.verify() == []
    assert store.health().phase_totals["cell"]["count"] == 1


def test_health_folds_mixed_shards_and_poisoned_sidecar(tmp_path):
    """The satellite scenario end to end: a compacted trace, a live
    worker shard, a torn trace tail and a poisoned unit all fold into
    one health summary while verify() flags exactly the poisoning."""
    store = ResultStore(tmp_path / "study.json")
    store.add(make_record(repetition=0))
    store.save()
    with store.journal_writer(shard="w5") as journal:
        journal.write(make_record(repetition=1))
    write_events(
        store.trace_path,
        [
            span_event("unit", seconds=1.0),
            {
                "v": 1,
                "kind": "event",
                "name": "retry",
                "attrs": {"attempt": 1, "error": "CellTimeoutError: slow"},
            },
        ],
    )
    shard = tmp_path / "study.trace.w5.jsonl"
    write_events(
        shard,
        [
            span_event("cell", model="log_reg", dataset="german"),
            span_event("cell", model="knn", dataset="german"),
        ],
    )
    truncate_tail(shard)  # the knn span is lost to the crash
    failure = {
        "dataset": "german",
        "error_type": "mislabels",
        "repetition": 2,
        "attempts": 3,
        "error": "RuntimeError: dead",
    }
    (tmp_path / "study.failures.jsonl").write_text(json.dumps(failure) + "\n")

    health = store.health()
    assert health.n_events == 3
    assert health.phase_totals["unit"]["count"] == 1
    assert health.model_seconds == {"log_reg": pytest.approx(0.1)}
    assert health.retries == 1
    assert health.timeouts == 1
    assert health.poisoned == 1
    assert health.failures == [failure]

    violations = store.verify()
    assert len(violations) == 1
    assert "poisoned" in violations[0]

    # reloading replays the journal shard; records are all intact
    assert len(ResultStore(tmp_path / "study.json")) == 2


def test_compact_trace_byte_identical_under_shard_permutation(tmp_path):
    """Thread-backend shard names (``w{pid}.t{tid}``) vary run to run,
    permuting the shard read order; compaction output must not."""
    parent_events = [span_event("planned"), counter_event("timeouts", 1.0)]
    worker_events = [
        [span_event("cell", model="log_reg"), counter_event("timeouts", 2.0)],
        [span_event("cell", model="knn")],
        [counter_event("cache_hit", 3.0, cache="featurizer")],
    ]
    compacted: list[bytes] = []
    # three shard-name assignments that sort (and therefore read) in
    # three different orders
    for name_sets in (
        ("study.trace.w1.t11.jsonl", "study.trace.w1.t22.jsonl", "study.trace.w2.t5.jsonl"),
        ("study.trace.w2.t5.jsonl", "study.trace.w1.t11.jsonl", "study.trace.w1.t22.jsonl"),
        ("study.trace.w9.t1.jsonl", "study.trace.w3.t7.jsonl", "study.trace.w1.t2.jsonl"),
    ):
        workdir = tmp_path / f"perm{len(compacted)}"
        workdir.mkdir()
        store = ResultStore(workdir / "study.json")
        write_events(store.trace_path, parent_events)
        for name, events in zip(name_sets, worker_events):
            write_events(workdir / name, events)
        store.compact_trace()
        compacted.append(store.trace_path.read_bytes())
    assert compacted[0] == compacted[1] == compacted[2]


def test_compact_trace_keeps_parent_event_order(tmp_path):
    """Only shard-origin lines sort; the parent's own chronological
    event sequence (planned -> retries -> ...) is preserved."""
    store = ResultStore(tmp_path / "study.json")
    write_events(
        store.trace_path,
        [span_event("zeta"), span_event("alpha"), span_event("beta")],
    )
    write_events(tmp_path / "study.trace.w1.jsonl", [span_event("cell")])
    store.compact_trace()
    names = [
        json.loads(line)["name"]
        for line in store.trace_path.read_text().splitlines()
    ]
    assert names == ["zeta", "alpha", "beta", "cell"]


def test_health_reads_uncompacted_worker_shards_directly(tmp_path):
    """health() must not require a save(): a run killed before
    compaction still reports from its worker shards."""
    store = ResultStore(tmp_path / "study.json")
    write_events(
        tmp_path / "study.trace.w1.jsonl",
        [span_event("cell", model="log_reg"), counter_event("units_merged", 1.0)],
    )
    health = store.health()
    assert health.phase_totals["cell"]["count"] == 1
    assert health.counters["units_merged"] == 1.0
