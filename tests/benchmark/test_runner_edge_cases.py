"""Edge-case tests for the experiment runner's version preparation."""

import numpy as np
import pytest

from repro.benchmark import ExperimentRunner, ResultStore, StudyConfig
from repro.benchmark.runner import _seed_for
from repro.datasets import DatasetDefinition
from repro.fairness.groups import Comparison, GroupPredicate
from repro.tabular import Table


def make_definition(generator, error_types=("missing_values",)):
    return DatasetDefinition(
        name="edge",
        source_domain="test",
        generator=generator,
        default_n_rows=100,
        label="label",
        error_types=error_types,
        drop_variables=("sex",),
        privileged_groups=(GroupPredicate("sex", Comparison.EQ, "male"),),
    )


def make_runner(**config_overrides):
    defaults = dict(n_sample=100, n_repetitions=1, dataset_sizes={"edge": 100})
    defaults.update(config_overrides)
    return ExperimentRunner(StudyConfig(**defaults), ResultStore())


def test_seed_for_is_deterministic_and_distinct():
    assert _seed_for("a", 1) == _seed_for("a", 1)
    assert _seed_for("a", 1) != _seed_for("a", 2)
    assert _seed_for("a", 1) != _seed_for("b", 1)


def test_single_class_training_labels_are_skipped():
    def generator(n_rows, seed):
        rng = np.random.default_rng(seed)
        return Table.from_columns(
            {
                "x": rng.normal(size=n_rows),
                "sex": ["male", "female"] * (n_rows // 2),
                "label": np.ones(n_rows),
            }
        )

    runner = make_runner()
    definition = make_definition(generator, error_types=("mislabels",))
    assert runner.run_definition(definition, "mislabels", models=("log_reg",)) == 0


def test_all_rows_missing_skips_missing_value_run():
    def generator(n_rows, seed):
        rng = np.random.default_rng(seed)
        return Table.from_columns(
            {
                "x": np.full(n_rows, np.nan),
                "sex": ["male", "female"] * (n_rows // 2),
                "label": (rng.random(n_rows) < 0.5).astype(float),
            }
        )

    runner = make_runner()
    definition = make_definition(generator)
    assert runner.run_definition(definition, "missing_values") == 0


def test_error_type_not_declared_returns_zero():
    def generator(n_rows, seed):
        return Table.from_columns(
            {
                "x": np.zeros(n_rows),
                "sex": ["male"] * n_rows,
                "label": np.zeros(n_rows),
            }
        )

    runner = make_runner()
    definition = make_definition(generator, error_types=("missing_values",))
    assert runner.run_definition(definition, "outliers") == 0


def test_clean_dataset_missing_value_repairs_are_noops_with_equal_scores():
    """Without any missing values, dirty and repaired versions coincide."""

    def generator(n_rows, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n_rows)
        sexes = np.array(["male", "female"])[rng.integers(0, 2, n_rows)]
        label = (x + rng.normal(scale=0.5, size=n_rows) > 0).astype(float)
        return Table.from_columns({"x": x, "sex": list(sexes), "label": label})

    store = ResultStore()
    runner = ExperimentRunner(
        StudyConfig(n_sample=100, n_repetitions=1, dataset_sizes={"edge": 100}),
        store,
    )
    definition = make_definition(generator)
    added = runner.run_definition(definition, "missing_values", models=("log_reg",))
    assert added == 6
    for record in store.records():
        assert record.metrics["dirty_test_acc"] == pytest.approx(
            record.metrics[f"{record.repair}_test_acc"]
        )


def test_mislabel_flip_changes_training_labels_only():
    def generator(n_rows, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n_rows)
        sexes = np.array(["male", "female"])[rng.integers(0, 2, n_rows)]
        label = (x > 0).astype(float)
        noisy = rng.random(n_rows) < 0.1
        label[noisy] = 1 - label[noisy]
        return Table.from_columns({"x": x, "sex": list(sexes), "label": label})

    store = ResultStore()
    runner = ExperimentRunner(
        StudyConfig(n_sample=200, n_repetitions=1, dataset_sizes={"edge": 200}),
        store,
    )
    definition = make_definition(generator, error_types=("mislabels",))
    added = runner.run_definition(definition, "mislabels", models=("log_reg",))
    assert added == 1
    record = next(store.records())
    dirty_total = sum(
        record.metrics[f"dirty__sex_priv__{cell}"] for cell in ("tn", "fp", "fn", "tp")
    )
    clean_total = sum(
        record.metrics[f"flip_labels__sex_priv__{cell}"]
        for cell in ("tn", "fp", "fn", "tp")
    )
    assert dirty_total == clean_total
