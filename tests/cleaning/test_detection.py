"""Tests for error detectors."""

import numpy as np
import pytest

from repro.cleaning import (
    IqrOutlierDetector,
    IsolationForestOutlierDetector,
    MissingValueDetector,
    SdOutlierDetector,
)
from repro.tabular import Table


def test_missing_value_detector_flags_rows_with_any_null():
    table = Table.from_columns(
        {
            "x": [1.0, np.nan, 3.0],
            "c": ["a", "b", None],
        }
    )
    result = MissingValueDetector().detect(table)
    assert list(result.row_mask) == [False, True, True]
    assert result.n_flagged == 2
    assert list(result.cell_masks["x"]) == [False, True, False]
    assert list(result.cell_masks["c"]) == [False, False, True]


def test_missing_value_detector_clean_table():
    table = Table.from_columns({"x": [1.0, 2.0]})
    result = MissingValueDetector().detect(table)
    assert result.n_flagged == 0
    assert result.flagged_fraction() == 0.0


def test_flagged_fraction_empty_table_is_nan():
    table = Table.from_columns({"x": np.array([], dtype=float)})
    assert np.isnan(MissingValueDetector().detect(table).flagged_fraction())


def _normal_with_spike(n=200, spike=100.0, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.normal(0.0, 1.0, n)
    values[0] = spike
    return values


def test_sd_detector_flags_extreme_value():
    table = Table.from_columns({"x": _normal_with_spike()})
    result = SdOutlierDetector(n_std=3.0).detect(table)
    assert result.row_mask[0]
    assert result.cell_masks["x"][0]


def test_sd_detector_ignores_constant_column():
    table = Table.from_columns({"x": np.full(10, 5.0)})
    assert SdOutlierDetector().detect(table).n_flagged == 0


def test_sd_detector_never_flags_nan_cells():
    values = _normal_with_spike()
    values[5] = np.nan
    table = Table.from_columns({"x": values})
    result = SdOutlierDetector().detect(table)
    assert not result.cell_masks["x"][5]


def test_sd_detector_invalid_n_std():
    with pytest.raises(ValueError):
        SdOutlierDetector(n_std=0.0)


def test_iqr_detector_flags_extreme_value():
    table = Table.from_columns({"x": _normal_with_spike()})
    result = IqrOutlierDetector(k=1.5).detect(table)
    assert result.row_mask[0]


def test_iqr_detector_flags_more_than_sd():
    """The paper observes iqr flags far more tuples than the sd rule."""
    rng = np.random.default_rng(1)
    values = rng.standard_t(df=3, size=2000)  # heavy-tailed
    table = Table.from_columns({"x": values})
    n_iqr = IqrOutlierDetector().detect(table).n_flagged
    n_sd = SdOutlierDetector().detect(table).n_flagged
    assert n_iqr > n_sd


def test_iqr_detector_interval_formula():
    values = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
    table = Table.from_columns({"x": values})
    result = IqrOutlierDetector(k=1.5).detect(table)
    assert list(result.cell_masks["x"]) == [False, False, False, False, True]


def test_iqr_detector_invalid_k():
    with pytest.raises(ValueError):
        IqrOutlierDetector(k=-1.0)


def test_if_detector_flags_multivariate_outlier():
    rng = np.random.default_rng(2)
    x = rng.normal(size=400)
    y = x + rng.normal(scale=0.1, size=400)
    # a point inlying marginally but outlying jointly
    x[0], y[0] = 2.0, -2.0
    table = Table.from_columns({"x": x, "y": y})
    result = IsolationForestOutlierDetector(
        contamination=0.01, random_state=0
    ).detect(table)
    assert result.row_mask[0]


def test_if_detector_skips_rows_with_missing_numerics():
    rng = np.random.default_rng(3)
    values = rng.normal(size=100)
    values[7] = np.nan
    table = Table.from_columns({"x": values, "y": rng.normal(size=100)})
    result = IsolationForestOutlierDetector(random_state=0).detect(table)
    assert not result.row_mask[7]
    assert not result.cell_masks["x"][7]


def test_if_detector_no_numeric_columns():
    table = Table.from_columns({"c": ["a", "b", "c"]})
    result = IsolationForestOutlierDetector().detect(table)
    assert result.n_flagged == 0


def test_detectors_only_inspect_numeric_columns():
    table = Table.from_columns(
        {"x": _normal_with_spike(), "c": ["a"] * 200}
    )
    for detector in (SdOutlierDetector(), IqrOutlierDetector()):
        result = detector.detect(table)
        assert "c" not in result.cell_masks


def test_detector_names():
    assert MissingValueDetector().name == "missing_values"
    assert SdOutlierDetector().name == "outliers_sd"
    assert IqrOutlierDetector().name == "outliers_iqr"
    assert IsolationForestOutlierDetector().name == "outliers_if"
