"""Property-based tests for cleaning invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning import (
    IqrOutlierDetector,
    LabelFlipRepair,
    MissingValueDetector,
    MissingValueRepair,
    SdOutlierDetector,
)
from repro.tabular import Table

_numeric_values = st.one_of(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.just(float("nan")),
)
_categorical_values = st.one_of(st.sampled_from(["a", "b"]), st.none())


@st.composite
def dirty_tables(draw, min_rows=1, max_rows=40):
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    nums = draw(st.lists(_numeric_values, min_size=n, max_size=n))
    cats = draw(st.lists(_categorical_values, min_size=n, max_size=n))
    return Table.from_columns({"num": np.array(nums), "cat": cats})


@given(dirty_tables())
def test_imputation_removes_all_missingness(table):
    repaired = MissingValueRepair().fit_transform(table)
    assert not repaired.missing_mask().any()


@given(dirty_tables())
def test_imputation_preserves_observed_cells(table):
    repaired = MissingValueRepair().fit_transform(table)
    observed = ~table.is_missing("num")
    assert np.array_equal(
        repaired.column("num")[observed], table.column("num")[observed]
    )


@given(dirty_tables())
def test_imputation_idempotent_property(table):
    repair = MissingValueRepair()
    once = repair.fit_transform(table)
    assert repair.transform(once) == once


@given(dirty_tables())
def test_missing_detector_counts_match_table(table):
    result = MissingValueDetector().detect(table)
    assert result.n_flagged == int(table.missing_mask().sum())


@given(dirty_tables(min_rows=2))
@settings(max_examples=50)
def test_outlier_detectors_never_flag_missing_cells(table):
    for detector in (SdOutlierDetector(), IqrOutlierDetector()):
        result = detector.detect(table)
        missing = table.is_missing("num")
        assert not (result.cell_masks["num"] & missing).any()


@given(dirty_tables(min_rows=2))
@settings(max_examples=50)
def test_sd_flags_subset_of_rows(table):
    result = SdOutlierDetector().detect(table)
    assert result.row_mask.shape == (len(table),)
    assert result.n_flagged <= len(table)


@given(
    st.lists(st.integers(0, 1), min_size=1, max_size=50),
    st.lists(st.booleans(), min_size=1, max_size=50),
)
def test_label_flip_changes_exactly_masked(labels, mask):
    n = min(len(labels), len(mask))
    labels = np.array(labels[:n])
    mask = np.array(mask[:n])
    flipped = LabelFlipRepair().repair(labels, mask)
    assert np.array_equal(flipped != labels, mask)
