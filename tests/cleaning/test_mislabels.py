"""Tests for confident-learning mislabel detection."""

import numpy as np

from repro.cleaning import ConfidentLearningDetector


def make_noisy_data(n=400, flip=20, seed=0):
    """Separable blobs with `flip` labels flipped."""
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n // 2, 2))
    X1 = rng.normal(4.0, 1.0, size=(n // 2, 2))
    X = np.vstack([X0, X1])
    y_true = np.concatenate([np.zeros(n // 2), np.ones(n // 2)]).astype(int)
    flipped = rng.choice(n, size=flip, replace=False)
    y_noisy = y_true.copy()
    y_noisy[flipped] = 1 - y_noisy[flipped]
    return X, y_true, y_noisy, flipped


def test_detects_majority_of_planted_flips():
    X, __, y_noisy, flipped = make_noisy_data()
    result = ConfidentLearningDetector(random_state=0).detect(X, y_noisy)
    found = np.nonzero(result.row_mask)[0]
    recall = len(set(found) & set(flipped)) / len(flipped)
    assert recall > 0.7


def test_flag_precision_reasonable():
    X, __, y_noisy, flipped = make_noisy_data()
    result = ConfidentLearningDetector(random_state=0).detect(X, y_noisy)
    found = np.nonzero(result.row_mask)[0]
    assert len(found) > 0
    precision = len(set(found) & set(flipped)) / len(found)
    assert precision > 0.6


def test_clean_data_has_few_flags():
    X, y_true, __, __ = make_noisy_data(flip=0)
    result = ConfidentLearningDetector(random_state=0).detect(X, y_true)
    assert result.n_flagged <= 0.03 * len(y_true)


def test_confident_joint_diagonal_dominant_on_mostly_clean_data():
    X, __, y_noisy, __ = make_noisy_data()
    result = ConfidentLearningDetector(random_state=0).detect(X, y_noisy)
    joint = result.confident_joint
    assert joint[0, 0] > joint[0, 1]
    assert joint[1, 1] > joint[1, 0]


def test_fp_fn_partition_of_flags():
    X, __, y_noisy, __ = make_noisy_data()
    result = ConfidentLearningDetector(random_state=0).detect(X, y_noisy)
    fp = result.predicted_false_positives(y_noisy)
    fn = result.predicted_false_negatives(y_noisy)
    assert not (fp & fn).any()
    assert np.array_equal(fp | fn, result.row_mask)


def test_single_class_labels_yield_no_flags():
    X = np.random.default_rng(0).normal(size=(50, 2))
    labels = np.ones(50, dtype=int)
    result = ConfidentLearningDetector().detect(X, labels)
    assert result.n_flagged == 0


def test_deterministic_under_seed():
    X, __, y_noisy, __ = make_noisy_data()
    a = ConfidentLearningDetector(random_state=4).detect(X, y_noisy)
    b = ConfidentLearningDetector(random_state=4).detect(X, y_noisy)
    assert np.array_equal(a.row_mask, b.row_mask)


def test_length_mismatch_rejected():
    import pytest

    with pytest.raises(ValueError, match="mismatch"):
        ConfidentLearningDetector().detect(np.zeros((3, 2)), np.zeros(4))


def test_thresholds_are_probabilities():
    X, __, y_noisy, __ = make_noisy_data()
    result = ConfidentLearningDetector(random_state=0).detect(X, y_noisy)
    assert 0.0 <= result.thresholds[0] <= 1.0
    assert 0.0 <= result.thresholds[1] <= 1.0
