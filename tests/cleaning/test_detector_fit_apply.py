"""Tests for the fit/apply split of the outlier detectors.

The Fig-3 evaluation process requires detectors to learn their
thresholds on the training partition and apply them unchanged to the
test partition — these tests pin that contract.
"""

import numpy as np
import pytest

from repro.cleaning import (
    IqrOutlierDetector,
    IsolationForestOutlierDetector,
    SdOutlierDetector,
)
from repro.tabular import Table


def make_tables():
    rng = np.random.default_rng(0)
    train = Table.from_columns({"x": rng.normal(0, 1, 500)})
    test_values = rng.normal(0, 1, 100)
    test_values[0] = 50.0  # extreme relative to the train distribution
    test = Table.from_columns({"x": test_values})
    return train, test


@pytest.mark.parametrize(
    "detector_factory", [SdOutlierDetector, IqrOutlierDetector]
)
def test_fit_on_train_flags_test_outlier(detector_factory):
    train, test = make_tables()
    detector = detector_factory().fit(train)
    result = detector.apply(test)
    assert result.row_mask[0]
    assert result.row_mask.sum() <= 10


@pytest.mark.parametrize(
    "detector_factory", [SdOutlierDetector, IqrOutlierDetector]
)
def test_apply_unfitted_raises(detector_factory):
    __, test = make_tables()
    with pytest.raises(RuntimeError, match="not fitted"):
        detector_factory().apply(test)


def test_thresholds_come_from_train_not_test():
    train, __ = make_tables()
    # a test table whose own distribution would hide the outlier
    wild = Table.from_columns({"x": np.linspace(-100, 100, 50)})
    detector = SdOutlierDetector().fit(train)
    result = detector.apply(wild)
    # under train thresholds (~±3), most of the wild values are outliers
    assert result.row_mask.mean() > 0.9
    # but fitting on the wild table itself flags none (uniform spread)
    refit = SdOutlierDetector().detect(wild)
    assert refit.n_flagged < result.n_flagged


def test_detect_equals_fit_apply():
    train, __ = make_tables()
    one_shot = IqrOutlierDetector().detect(train)
    two_step = IqrOutlierDetector().fit(train).apply(train)
    assert np.array_equal(one_shot.row_mask, two_step.row_mask)


def test_isolation_forest_fit_apply_roundtrip():
    train, test = make_tables()
    detector = IsolationForestOutlierDetector(random_state=1).fit(train)
    result = detector.apply(test)
    assert result.row_mask.shape == (100,)
    assert result.row_mask[0]  # the planted extreme point


def test_isolation_forest_apply_skips_missing_rows():
    train, test = make_tables()
    values = test.column("x")
    values[5] = np.nan
    test = test.with_numeric_column("x", values)
    detector = IsolationForestOutlierDetector(random_state=1).fit(train)
    result = detector.apply(test)
    assert not result.row_mask[5]


def test_fit_ignores_all_missing_column():
    train = Table.from_columns({"x": np.full(20, np.nan), "y": np.arange(20.0)})
    detector = IqrOutlierDetector().fit(train)
    result = detector.apply(train)
    assert not result.cell_masks["x"].any()


def test_apply_handles_column_subset():
    """Applying to a table that lacks a fitted column must not crash."""
    train, __ = make_tables()
    detector = SdOutlierDetector().fit(train)
    other = Table.from_columns({"z": np.arange(5.0)})
    result = detector.apply(other)
    # unfitted column: no bounds -> nothing flagged
    assert not result.row_mask.any()
