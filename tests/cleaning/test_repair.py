"""Tests for repair methods."""

import numpy as np
import pytest

from repro.cleaning import (
    CategoricalImputation,
    IqrOutlierDetector,
    LabelFlipRepair,
    MissingValueRepair,
    NumericImputation,
    OutlierRepair,
)
from repro.cleaning.repair import DUMMY_VALUE
from repro.cleaning.strategies import (
    MISSING_VALUE_REPAIRS,
    OUTLIER_REPAIRS,
    missing_value_repairs,
    outlier_detectors,
    outlier_repairs,
)
from repro.tabular import Table


def dirty_table():
    return Table.from_columns(
        {
            "x": [1.0, 2.0, np.nan, 3.0],
            "c": ["a", None, "a", "b"],
        }
    )


def test_mean_imputation():
    repaired = MissingValueRepair(numeric=NumericImputation.MEAN).fit_transform(
        dirty_table()
    )
    assert repaired.column("x")[2] == pytest.approx(2.0)


def test_median_imputation():
    table = Table.from_columns({"x": [1.0, 2.0, np.nan, 100.0]})
    repaired = MissingValueRepair(numeric=NumericImputation.MEDIAN).fit_transform(table)
    assert repaired.column("x")[2] == pytest.approx(2.0)


def test_mode_imputation_numeric():
    table = Table.from_columns({"x": [5.0, 5.0, 1.0, np.nan]})
    repaired = MissingValueRepair(numeric=NumericImputation.MODE).fit_transform(table)
    assert repaired.column("x")[3] == 5.0


def test_dummy_imputation_categorical():
    repaired = MissingValueRepair(
        categorical=CategoricalImputation.DUMMY
    ).fit_transform(dirty_table())
    assert repaired.column("c")[1] == DUMMY_VALUE


def test_mode_imputation_categorical():
    repaired = MissingValueRepair(
        categorical=CategoricalImputation.MODE
    ).fit_transform(dirty_table())
    assert repaired.column("c")[1] == "a"


def test_imputation_leaves_observed_values_untouched():
    repaired = MissingValueRepair().fit_transform(dirty_table())
    assert repaired.column("x")[0] == 1.0
    assert repaired.column("c")[3] == "b"


def test_imputation_removes_all_missingness():
    repaired = MissingValueRepair().fit_transform(dirty_table())
    assert not repaired.missing_mask().any()


def test_imputation_statistics_fitted_on_train_applied_to_test():
    train = Table.from_columns({"x": [10.0, 10.0, 10.0], "c": ["z", "z", "z"]})
    test = Table.from_columns({"x": [np.nan], "c": [None]})
    repair = MissingValueRepair(
        numeric=NumericImputation.MEAN, categorical=CategoricalImputation.MODE
    ).fit(train)
    repaired = repair.transform(test)
    assert repaired.column("x")[0] == 10.0
    assert repaired.column("c")[0] == "z"


def test_imputation_all_missing_column_fills_zero():
    table = Table.from_columns({"x": [np.nan, np.nan]})
    repaired = MissingValueRepair().fit_transform(table)
    assert np.array_equal(repaired.column("x"), [0.0, 0.0])


def test_imputation_idempotent():
    repair = MissingValueRepair()
    once = repair.fit_transform(dirty_table())
    twice = repair.transform(once)
    assert once == twice


def test_imputation_unfitted_raises():
    with pytest.raises(RuntimeError):
        MissingValueRepair().transform(dirty_table())


def test_missing_value_repair_names():
    names = set(MISSING_VALUE_REPAIRS)
    assert names == {
        "impute_mean_mode",
        "impute_mean_dummy",
        "impute_median_mode",
        "impute_median_dummy",
        "impute_mode_mode",
        "impute_mode_dummy",
    }


def outlier_table():
    values = np.concatenate([np.full(20, 1.0), [1000.0]])
    return Table.from_columns({"x": values})


def test_outlier_repair_replaces_flagged_cells():
    table = outlier_table()
    detection = IqrOutlierDetector().detect(table)
    repaired = OutlierRepair(NumericImputation.MEAN).fit_transform(table, detection)
    assert repaired.column("x")[-1] == pytest.approx(1.0)


def test_outlier_repair_statistic_excludes_flagged_values():
    table = outlier_table()
    detection = IqrOutlierDetector().detect(table)
    repaired = OutlierRepair(NumericImputation.MEAN).fit_transform(table, detection)
    # mean of clean values is exactly 1.0, not pulled up by the outlier
    assert repaired.column("x")[-1] == 1.0


def test_outlier_repair_leaves_clean_cells():
    table = outlier_table()
    detection = IqrOutlierDetector().detect(table)
    repaired = OutlierRepair().fit_transform(table, detection)
    assert np.array_equal(repaired.column("x")[:20], table.column("x")[:20])


def test_outlier_repair_row_count_mismatch():
    table = outlier_table()
    detection = IqrOutlierDetector().detect(table)
    other = Table.from_columns({"x": [1.0, 2.0]})
    repair = OutlierRepair().fit(table, detection)
    with pytest.raises(ValueError, match="rows"):
        repair.transform(other, detection.__class__(
            strategy="outliers_iqr",
            row_mask=np.zeros(5, dtype=bool),
        ))


def test_outlier_repair_unfitted_raises():
    table = outlier_table()
    detection = IqrOutlierDetector().detect(table)
    with pytest.raises(RuntimeError):
        OutlierRepair().transform(table, detection)


def test_outlier_repair_names():
    assert set(OUTLIER_REPAIRS) == {
        "repair_outliers_mean",
        "repair_outliers_median",
        "repair_outliers_mode",
    }


def test_strategy_registries_return_fresh_instances():
    a = missing_value_repairs()
    b = missing_value_repairs()
    assert a["impute_mean_dummy"] is not b["impute_mean_dummy"]
    assert set(outlier_detectors()) == {"outliers_sd", "outliers_iqr", "outliers_if"}
    assert len(outlier_repairs()) == 3


def test_label_flip_repair():
    labels = np.array([0, 1, 1, 0])
    mask = np.array([True, False, True, False])
    flipped = LabelFlipRepair().repair(labels, mask)
    assert list(flipped) == [1, 1, 0, 0]
    assert list(labels) == [0, 1, 1, 0]  # input untouched


def test_label_flip_shape_mismatch():
    with pytest.raises(ValueError):
        LabelFlipRepair().repair(np.array([0, 1]), np.array([True]))


def test_label_flip_involution():
    labels = np.array([0, 1, 1, 0, 1])
    mask = np.array([True, True, False, False, True])
    repair = LabelFlipRepair()
    assert np.array_equal(repair.repair(repair.repair(labels, mask), mask), labels)
