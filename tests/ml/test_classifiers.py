"""Tests for the three classifier families on separable synthetic data."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostedTreesClassifier,
    KNearestNeighborsClassifier,
    LogisticRegressionClassifier,
    clone,
)
from repro.ml.metrics import accuracy_score


def make_blobs(n=300, seed=0, separation=3.0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n // 2, 2))
    X1 = rng.normal(separation, 1.0, size=(n - n // 2, 2))
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(n // 2), np.ones(n - n // 2)]).astype(int)
    permutation = rng.permutation(n)
    return X[permutation], y[permutation]


ALL_MODELS = [
    LogisticRegressionClassifier(C=1.0),
    KNearestNeighborsClassifier(n_neighbors=5),
    GradientBoostedTreesClassifier(n_estimators=20, max_depth=3),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_separable_blobs_high_accuracy(model):
    X, y = make_blobs()
    model = clone(model)
    model.fit(X, y)
    assert accuracy_score(y, model.predict(X)) > 0.95


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_predict_proba_shape_and_normalisation(model):
    X, y = make_blobs(n=100)
    model = clone(model)
    model.fit(X, y)
    proba = model.predict_proba(X)
    assert proba.shape == (100, 2)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert (proba >= 0).all() and (proba <= 1).all()


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_predict_consistent_with_proba(model):
    X, y = make_blobs(n=100)
    model = clone(model)
    model.fit(X, y)
    assert np.array_equal(
        model.predict(X), (model.predict_proba(X)[:, 1] >= 0.5).astype(int)
    )


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_nan_in_fit_rejected(model):
    X = np.array([[1.0, np.nan], [0.0, 1.0], [1.0, 1.0], [0.0, 0.0]])
    y = np.array([0, 1, 1, 0])
    with pytest.raises(ValueError, match="NaN"):
        clone(model).fit(X, y)


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_non_binary_labels_rejected(model):
    X = np.zeros((4, 2))
    with pytest.raises(ValueError, match="0/1"):
        clone(model).fit(X, np.array([0, 1, 2, 1]))


def test_logreg_regularisation_shrinks_weights():
    X, y = make_blobs(separation=1.5)
    loose = LogisticRegressionClassifier(C=100.0).fit(X, y)
    tight = LogisticRegressionClassifier(C=0.001).fit(X, y)
    assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)


def test_logreg_invalid_C():
    with pytest.raises(ValueError):
        LogisticRegressionClassifier(C=0.0)


def test_logreg_decision_function_monotone_in_proba():
    X, y = make_blobs(n=60)
    model = LogisticRegressionClassifier().fit(X, y)
    logits = model.decision_function(X)
    proba = model.predict_proba(X)[:, 1]
    order = np.argsort(logits)
    assert np.all(np.diff(proba[order]) >= -1e-12)


def test_knn_k1_memorises_training_data():
    X, y = make_blobs(n=50, separation=1.0)
    model = KNearestNeighborsClassifier(n_neighbors=1).fit(X, y)
    assert accuracy_score(y, model.predict(X)) == 1.0


def test_knn_k_capped_at_train_size():
    X = np.array([[0.0], [1.0], [2.0]])
    y = np.array([0, 1, 1])
    model = KNearestNeighborsClassifier(n_neighbors=50).fit(X, y)
    proba = model.predict_proba(np.array([[0.5]]))
    assert proba[0, 1] == pytest.approx(2 / 3)


def test_knn_invalid_k():
    with pytest.raises(ValueError):
        KNearestNeighborsClassifier(n_neighbors=0)


def test_knn_feature_mismatch_on_predict():
    model = KNearestNeighborsClassifier().fit(np.zeros((5, 2)), np.array([0, 1, 0, 1, 0]))
    with pytest.raises(ValueError, match="features"):
        model.predict(np.zeros((2, 3)))


def test_knn_unfitted_raises():
    with pytest.raises(RuntimeError):
        KNearestNeighborsClassifier().predict(np.zeros((1, 2)))


def test_gbt_training_loss_decreases_with_more_trees():
    from repro.ml.metrics import log_loss

    X, y = make_blobs(n=200, separation=1.2, seed=3)
    few = GradientBoostedTreesClassifier(n_estimators=2, max_depth=2).fit(X, y)
    many = GradientBoostedTreesClassifier(n_estimators=40, max_depth=2).fit(X, y)
    assert log_loss(y, many.predict_proba(X)[:, 1]) < log_loss(
        y, few.predict_proba(X)[:, 1]
    )


def test_gbt_learns_xor_that_logreg_cannot():
    rng = np.random.default_rng(5)
    X = rng.uniform(-1, 1, size=(400, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    gbt = GradientBoostedTreesClassifier(n_estimators=40, max_depth=3).fit(X, y)
    logreg = LogisticRegressionClassifier().fit(X, y)
    assert accuracy_score(y, gbt.predict(X)) > 0.9
    assert accuracy_score(y, logreg.predict(X)) < 0.7


def test_gbt_subsample_is_deterministic_under_seed():
    X, y = make_blobs(n=120)
    a = GradientBoostedTreesClassifier(
        n_estimators=10, subsample=0.7, random_state=9
    ).fit(X, y)
    b = GradientBoostedTreesClassifier(
        n_estimators=10, subsample=0.7, random_state=9
    ).fit(X, y)
    assert np.array_equal(a.predict_proba(X), b.predict_proba(X))


def test_gbt_invalid_params():
    with pytest.raises(ValueError):
        GradientBoostedTreesClassifier(n_estimators=0)
    with pytest.raises(ValueError):
        GradientBoostedTreesClassifier(subsample=0.0)
    with pytest.raises(ValueError):
        GradientBoostedTreesClassifier(max_depth=0)


def test_gbt_n_fitted_trees():
    X, y = make_blobs(n=60)
    model = GradientBoostedTreesClassifier(n_estimators=7).fit(X, y)
    assert model.n_fitted_trees == 7


def test_clone_produces_unfitted_copy_with_same_params():
    model = GradientBoostedTreesClassifier(n_estimators=9, max_depth=4)
    copy = clone(model)
    assert copy.get_params() == model.get_params()
    with pytest.raises(RuntimeError):
        copy.decision_function(np.zeros((1, 2)))


def test_set_params_unknown_name_rejected():
    with pytest.raises(ValueError, match="hyperparameter"):
        LogisticRegressionClassifier().set_params(gamma=1.0)
