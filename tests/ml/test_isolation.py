"""Tests for the isolation forest."""

import numpy as np
import pytest

from repro.ml import IsolationForest


def make_data_with_outliers(n=500, n_outliers=10, seed=0):
    rng = np.random.default_rng(seed)
    inliers = rng.normal(0.0, 1.0, size=(n - n_outliers, 2))
    outliers = rng.normal(0.0, 1.0, size=(n_outliers, 2)) + 12.0
    X = np.vstack([inliers, outliers])
    is_outlier = np.zeros(n, dtype=bool)
    is_outlier[-n_outliers:] = True
    return X, is_outlier


def test_outliers_get_higher_scores():
    X, is_outlier = make_data_with_outliers()
    forest = IsolationForest(n_estimators=50, random_state=1).fit(X)
    scores = forest.score_samples(X)
    assert scores[is_outlier].mean() > scores[~is_outlier].mean() + 0.1


def test_predict_outliers_flags_the_planted_points():
    X, is_outlier = make_data_with_outliers(n=500, n_outliers=5)
    forest = IsolationForest(
        n_estimators=100, contamination=0.01, random_state=2
    ).fit(X)
    flagged = forest.predict_outliers(X)
    # all five planted outliers are among the flagged points
    assert flagged[is_outlier].sum() == 5


def test_contamination_controls_flag_rate():
    X, __ = make_data_with_outliers()
    forest = IsolationForest(contamination=0.05, random_state=3).fit(X)
    rate = forest.predict_outliers(X).mean()
    assert rate <= 0.06


def test_scores_in_unit_interval():
    X, __ = make_data_with_outliers(n=200)
    forest = IsolationForest(n_estimators=20, random_state=4).fit(X)
    scores = forest.score_samples(X)
    assert (scores > 0).all() and (scores < 1).all()


def test_deterministic_under_seed():
    X, __ = make_data_with_outliers(n=200)
    a = IsolationForest(n_estimators=20, random_state=5).fit(X).score_samples(X)
    b = IsolationForest(n_estimators=20, random_state=5).fit(X).score_samples(X)
    assert np.array_equal(a, b)


def test_invalid_contamination():
    with pytest.raises(ValueError):
        IsolationForest(contamination=0.0)
    with pytest.raises(ValueError):
        IsolationForest(contamination=0.6)


def test_nan_rejected():
    with pytest.raises(ValueError, match="NaN"):
        IsolationForest().fit(np.array([[1.0], [np.nan]]))


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        IsolationForest().score_samples(np.zeros((1, 2)))


def test_small_dataset_does_not_crash():
    X = np.array([[0.0], [1.0], [2.0]])
    forest = IsolationForest(n_estimators=5, contamination=0.3, random_state=0).fit(X)
    assert forest.score_samples(X).shape == (3,)


def test_flat_walk_matches_recursive_reference():
    """The struct-of-arrays traversal must be bit-identical to a
    pointer-chasing recursive descent of the same trees."""
    from repro.ml.isolation import (
        IsolationForest as Forest,
        _average_path_length,
        _build_itree,
    )

    def recursive_path_lengths(node, X, rows, depth, out):
        if node.is_leaf:
            out[rows] = depth + _average_path_length(node.size)
            return
        goes_left = X[rows, node.feature] < node.threshold
        recursive_path_lengths(node.left, X, rows[goes_left], depth + 1, out)
        recursive_path_lengths(node.right, X, rows[~goes_left], depth + 1, out)

    X, __ = make_data_with_outliers(n=400, seed=7)
    n_trees, sub, seed = 15, 64, 11
    forest = Forest(
        n_estimators=n_trees, max_samples=sub, random_state=seed
    ).fit(X)

    # replay the fit's RNG stream to rebuild the same node trees
    rng = np.random.default_rng(seed)
    max_depth = int(np.ceil(np.log2(sub)))
    depths = np.zeros(len(X))
    buffer = np.empty(len(X))
    rows = np.arange(len(X))
    for __ in range(n_trees):
        pick = rng.choice(len(X), size=sub, replace=False)
        tree = _build_itree(X[pick], 0, max_depth, rng)
        recursive_path_lengths(tree, X, rows, 0, buffer)
        depths += buffer
    reference = np.power(
        2.0, -(depths / n_trees) / max(_average_path_length(sub), 1e-12)
    )
    assert np.array_equal(forest.score_samples(X), reference)
