"""Property-based tests for regression-tree invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeRegressor


@st.composite
def regression_problems(draw, min_rows=2, max_rows=40):
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    X = draw(
        st.lists(
            st.lists(
                st.floats(-100, 100, allow_nan=False), min_size=2, max_size=2
            ),
            min_size=n,
            max_size=n,
        )
    )
    y = draw(st.lists(st.floats(-100, 100, allow_nan=False), min_size=n, max_size=n))
    # a coarse value grid keeps distinct features distinct under the
    # monotone transforms applied in the tests (no float collapse)
    return np.round(np.array(X), 2), np.array(y)


@given(regression_problems())
@settings(max_examples=50)
def test_predictions_within_target_range(problem):
    X, y = problem
    model = DecisionTreeRegressor(max_depth=3).fit(X, y)
    predictions = model.predict(X)
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9


@given(regression_problems())
@settings(max_examples=50)
def test_training_prediction_mean_preserved(problem):
    """Leaf values are subset means, so the prediction mean equals the
    target mean (each row lands in exactly one leaf)."""
    X, y = problem
    model = DecisionTreeRegressor(max_depth=4).fit(X, y)
    assert np.isclose(model.predict(X).mean(), y.mean(), rtol=1e-6, atol=1e-6)


@given(regression_problems(min_rows=4))
@settings(max_examples=30)
def test_invariant_to_monotone_feature_transform(problem):
    """CART splits depend only on feature order, so a strictly
    increasing transform of a feature leaves predictions unchanged."""
    X, y = problem
    model_a = DecisionTreeRegressor(max_depth=3).fit(X, y)
    X_transformed = X.copy()
    X_transformed[:, 0] = np.arcsinh(X_transformed[:, 0]) * 3.0 + 1.0
    model_b = DecisionTreeRegressor(max_depth=3).fit(X_transformed, y)
    assert np.allclose(model_a.predict(X), model_b.predict(X_transformed))


@given(regression_problems())
@settings(max_examples=30)
def test_deeper_never_increases_training_error(problem):
    X, y = problem
    shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
    deep = DecisionTreeRegressor(max_depth=4).fit(X, y)
    err_shallow = float(np.mean((shallow.predict(X) - y) ** 2))
    err_deep = float(np.mean((deep.predict(X) - y) ** 2))
    assert err_deep <= err_shallow + 1e-9
