"""Tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    ConfusionMatrix,
    accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_score,
    recall_score,
    roc_auc_score,
)

Y_TRUE = np.array([1, 1, 0, 0, 1, 0])
Y_PRED = np.array([1, 0, 0, 1, 1, 0])


def test_confusion_matrix_counts():
    cm = confusion_matrix(Y_TRUE, Y_PRED)
    assert (cm.tn, cm.fp, cm.fn, cm.tp) == (2, 1, 1, 2)


def test_confusion_matrix_total_matches_input():
    assert confusion_matrix(Y_TRUE, Y_PRED).total == len(Y_TRUE)


def test_accuracy():
    assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(4 / 6)


def test_precision_recall_f1():
    assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)
    assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)
    assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)


def test_precision_nan_when_no_positive_predictions():
    cm = confusion_matrix(np.array([1, 0]), np.array([0, 0]))
    assert np.isnan(cm.precision)


def test_recall_nan_when_no_positives():
    cm = confusion_matrix(np.array([0, 0]), np.array([0, 1]))
    assert np.isnan(cm.recall)


def test_f1_zero_when_degenerate():
    assert f1_score(np.array([1, 0]), np.array([0, 0])) == 0.0


def test_false_positive_rate():
    cm = confusion_matrix(Y_TRUE, Y_PRED)
    assert cm.false_positive_rate == pytest.approx(1 / 3)


def test_selection_rate():
    cm = confusion_matrix(Y_TRUE, Y_PRED)
    assert cm.selection_rate == pytest.approx(3 / 6)


def test_confusion_matrix_addition():
    cm = confusion_matrix(Y_TRUE, Y_PRED)
    doubled = cm + cm
    assert doubled.tp == 2 * cm.tp
    assert doubled.total == 2 * cm.total


def test_as_dict_key_order():
    cm = ConfusionMatrix(tn=1, fp=2, fn=3, tp=4)
    assert list(cm.as_dict()) == ["tn", "fp", "fn", "tp"]


def test_non_binary_labels_rejected():
    with pytest.raises(ValueError, match="0/1"):
        confusion_matrix(np.array([0, 2]), np.array([0, 1]))


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError, match="mismatch"):
        accuracy_score(np.array([0, 1]), np.array([0]))


def test_log_loss_perfect_predictions_near_zero():
    assert log_loss(np.array([1, 0]), np.array([1.0, 0.0])) < 1e-10


def test_log_loss_uninformative_is_ln2():
    assert log_loss(np.array([1, 0]), np.array([0.5, 0.5])) == pytest.approx(
        np.log(2)
    )


def test_roc_auc_perfect_ranking():
    assert roc_auc_score(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0


def test_roc_auc_inverted_ranking():
    assert roc_auc_score(np.array([1, 1, 0, 0]), np.array([0.1, 0.2, 0.8, 0.9])) == 0.0


def test_roc_auc_ties_give_half():
    assert roc_auc_score(np.array([0, 1]), np.array([0.5, 0.5])) == pytest.approx(0.5)


def test_roc_auc_single_class_is_nan():
    assert np.isnan(roc_auc_score(np.array([1, 1]), np.array([0.2, 0.9])))


def test_empty_confusion_matrix_accuracy_nan():
    assert np.isnan(ConfusionMatrix(0, 0, 0, 0).accuracy)
