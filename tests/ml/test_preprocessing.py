"""Tests for scalers, encoders and the featurizer."""

import numpy as np
import pytest

from repro.ml import OneHotEncoder, StandardScaler, TabularFeaturizer
from repro.tabular import Table


def test_scaler_zero_mean_unit_variance():
    X = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
    Z = StandardScaler().fit_transform(X)
    assert np.allclose(Z.mean(axis=0), 0.0)
    assert np.allclose(Z.std(axis=0), 1.0)


def test_scaler_constant_column_not_divided_by_zero():
    X = np.array([[2.0], [2.0], [2.0]])
    Z = StandardScaler().fit_transform(X)
    assert np.allclose(Z, 0.0)


def test_scaler_transform_uses_fit_statistics():
    scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
    assert np.allclose(scaler.transform(np.array([[5.0]])), [[0.0]])


def test_scaler_feature_count_mismatch():
    scaler = StandardScaler().fit(np.zeros((3, 2)))
    with pytest.raises(ValueError, match="features"):
        scaler.transform(np.zeros((3, 3)))


def test_scaler_unfitted_raises():
    with pytest.raises(RuntimeError):
        StandardScaler().transform(np.zeros((1, 1)))


def _object_array(values):
    arr = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        arr[i] = value
    return arr


def test_one_hot_basic():
    encoder = OneHotEncoder()
    block = encoder.fit_transform([_object_array(["a", "b", "a"])])
    assert block.shape == (3, 2)
    assert np.array_equal(block[:, 0], [1.0, 0.0, 1.0])


def test_one_hot_unseen_category_all_zeros():
    encoder = OneHotEncoder().fit([_object_array(["a", "b"])])
    block = encoder.transform([_object_array(["c"])])
    assert np.array_equal(block, [[0.0, 0.0]])


def test_one_hot_missing_gets_indicator_when_seen_at_fit():
    encoder = OneHotEncoder().fit([_object_array(["a", None])])
    block = encoder.transform([_object_array([None, "a"])])
    assert block.shape == (2, 2)
    assert block[0, 1] == 1.0  # None column is last
    assert block[1, 0] == 1.0


def test_one_hot_missing_unseen_at_fit_all_zeros():
    encoder = OneHotEncoder().fit([_object_array(["a", "b"])])
    block = encoder.transform([_object_array([None])])
    assert np.array_equal(block, [[0.0, 0.0]])


def test_one_hot_multiple_columns_width():
    encoder = OneHotEncoder().fit(
        [_object_array(["a", "b"]), _object_array(["x", "y", "x"][:2])]
    )
    assert encoder.n_output_features == 4


def test_one_hot_column_count_mismatch():
    encoder = OneHotEncoder().fit([_object_array(["a"])])
    with pytest.raises(ValueError, match="columns"):
        encoder.transform([_object_array(["a"]), _object_array(["b"])])


def _table():
    return Table.from_columns(
        {
            "age": [20.0, 30.0, 40.0, 50.0],
            "sex": ["m", "f", "m", "f"],
            "city": ["ams", "nyc", "ams", "ams"],
        }
    )


def test_featurizer_width():
    featurizer = TabularFeaturizer()
    X = featurizer.fit_transform(_table())
    # 1 numeric + 2 (sex) + 2 (city)
    assert X.shape == (4, 5)
    assert featurizer.n_output_features == 5


def test_featurizer_respects_feature_columns():
    featurizer = TabularFeaturizer(feature_columns=("age",))
    X = featurizer.fit_transform(_table())
    assert X.shape == (4, 1)


def test_featurizer_unknown_feature_column():
    with pytest.raises(KeyError):
        TabularFeaturizer(feature_columns=("ghost",)).fit(_table())


def test_featurizer_rejects_nan_numeric():
    table = Table.from_columns({"x": [1.0, np.nan]})
    with pytest.raises(ValueError, match="NaN"):
        TabularFeaturizer().fit(table)


def test_featurizer_numeric_standardised():
    X = TabularFeaturizer(feature_columns=("age",)).fit_transform(_table())
    assert np.allclose(X.mean(axis=0), 0.0)


def test_featurizer_transform_on_new_table():
    featurizer = TabularFeaturizer().fit(_table())
    other = Table.from_columns(
        {"age": [35.0], "sex": ["m"], "city": ["paris"]}
    )
    X = featurizer.transform(other)
    assert X.shape == (1, 5)
    # unseen city encodes as zeros in the city block
    assert np.array_equal(X[0, 3:], [0.0, 0.0])


def test_featurizer_unfitted_raises():
    with pytest.raises(RuntimeError):
        TabularFeaturizer().transform(_table())
