"""Tests for fairness-constrained hyperparameter search."""

import numpy as np
import pytest

from repro.fairness.metrics import equal_opportunity
from repro.ml import FairnessConstrainedSearch, LogisticRegressionClassifier


def make_biased_data(n=400, seed=0):
    """Data where group membership correlates with a proxy feature.

    Feature 0 carries the true signal; feature 1 is a group proxy that
    is spuriously predictive in the privileged group only. Strongly
    regularised models lean on the stable signal (fairer); weakly
    regularised ones exploit the proxy (less fair).
    """
    rng = np.random.default_rng(seed)
    privileged = rng.random(n) < 0.5
    signal = rng.normal(size=n)
    y = (signal + rng.normal(scale=0.8, size=n) > 0).astype(int)
    proxy = np.where(privileged, y + rng.normal(scale=0.3, size=n),
                     rng.normal(scale=1.0, size=n))
    X = np.column_stack([signal, proxy])
    return X, y, privileged


def test_returns_accurate_feasible_candidate():
    X, y, privileged = make_biased_data()
    search = FairnessConstrainedSearch(
        LogisticRegressionClassifier(),
        {"C": [0.001, 0.1, 10.0]},
        metric=equal_opportunity,
        max_disparity=0.5,
    ).fit(X, y, privileged, ~privileged)
    assert search.best_params_ is not None
    assert search.constraint_satisfied_
    assert search.predict(X).shape == (len(y),)


def test_tight_constraint_changes_selection():
    X, y, privileged = make_biased_data()
    loose = FairnessConstrainedSearch(
        LogisticRegressionClassifier(),
        {"C": [0.001, 10.0]},
        metric=equal_opportunity,
        max_disparity=10.0,
    ).fit(X, y, privileged, ~privileged)
    tight = FairnessConstrainedSearch(
        LogisticRegressionClassifier(),
        {"C": [0.001, 10.0]},
        metric=equal_opportunity,
        max_disparity=0.0,
    ).fit(X, y, privileged, ~privileged)
    # the unconstrained pick maximises accuracy; the infeasible-tight
    # pick minimises disparity — they need not coincide
    assert tight.best_disparity_ <= loose.best_disparity_ + 1e-12


def test_infeasible_constraint_falls_back_to_min_disparity():
    X, y, privileged = make_biased_data()
    search = FairnessConstrainedSearch(
        LogisticRegressionClassifier(),
        {"C": [0.001, 0.1, 10.0]},
        metric=equal_opportunity,
        max_disparity=0.0,
    ).fit(X, y, privileged, ~privileged)
    assert not search.constraint_satisfied_
    assert search.best_disparity_ == min(
        entry["disparity"] for entry in search.cv_results_
    )


def test_cv_results_cover_grid():
    X, y, privileged = make_biased_data()
    search = FairnessConstrainedSearch(
        LogisticRegressionClassifier(),
        {"C": [0.01, 1.0], "max_iter": [50, 100]},
        metric=equal_opportunity,
    ).fit(X, y, privileged, ~privileged)
    assert len(search.cv_results_) == 4
    for entry in search.cv_results_:
        assert 0.0 <= entry["accuracy"] <= 1.0
        assert entry["disparity"] >= 0.0


def test_mask_alignment_validated():
    X, y, privileged = make_biased_data()
    with pytest.raises(ValueError, match="align"):
        FairnessConstrainedSearch(
            LogisticRegressionClassifier(),
            {"C": [1.0]},
            metric=equal_opportunity,
        ).fit(X, y, privileged[:-1], ~privileged)


def test_invalid_construction():
    with pytest.raises(ValueError):
        FairnessConstrainedSearch(
            LogisticRegressionClassifier(), {}, metric=equal_opportunity
        )
    with pytest.raises(ValueError):
        FairnessConstrainedSearch(
            LogisticRegressionClassifier(),
            {"C": [1.0]},
            metric=equal_opportunity,
            max_disparity=-0.1,
        )


def test_unfitted_predict_raises():
    search = FairnessConstrainedSearch(
        LogisticRegressionClassifier(), {"C": [1.0]}, metric=equal_opportunity
    )
    with pytest.raises(RuntimeError):
        search.predict(np.zeros((1, 2)))


def test_deterministic_under_seed():
    X, y, privileged = make_biased_data()
    def run():
        return FairnessConstrainedSearch(
            LogisticRegressionClassifier(),
            {"C": [0.01, 1.0, 100.0]},
            metric=equal_opportunity,
            random_state=7,
        ).fit(X, y, privileged, ~privileged)

    a, b = run(), run()
    assert a.best_params_ == b.best_params_
    assert a.best_disparity_ == b.best_disparity_
