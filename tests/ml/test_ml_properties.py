"""Property-based tests for the ML substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import StandardScaler
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
    roc_auc_score,
)

_labels = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=60)


@st.composite
def label_pairs(draw):
    y_true = draw(_labels)
    n = len(y_true)
    y_pred = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    return np.array(y_true), np.array(y_pred)


@given(label_pairs())
def test_confusion_matrix_partitions_examples(pair):
    y_true, y_pred = pair
    cm = confusion_matrix(y_true, y_pred)
    assert cm.total == len(y_true)
    assert cm.tp + cm.fn == int((y_true == 1).sum())
    assert cm.tn + cm.fp == int((y_true == 0).sum())


@given(label_pairs())
def test_accuracy_equals_confusion_accuracy(pair):
    y_true, y_pred = pair
    assert accuracy_score(y_true, y_pred) == confusion_matrix(y_true, y_pred).accuracy


@given(label_pairs())
def test_f1_bounded(pair):
    y_true, y_pred = pair
    assert 0.0 <= f1_score(y_true, y_pred) <= 1.0


@given(label_pairs())
def test_perfect_prediction_metrics(pair):
    y_true, __ = pair
    assert accuracy_score(y_true, y_true) == 1.0
    if y_true.sum() > 0:
        assert f1_score(y_true, y_true) == 1.0


@given(_labels)
def test_log_loss_of_true_labels_is_minimal(labels):
    y = np.array(labels, dtype=float)
    assert log_loss(y, y) <= log_loss(y, np.full(len(y), 0.5)) + 1e-12


@given(
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=50),
    st.lists(st.integers(0, 1), min_size=2, max_size=50),
)
def test_roc_auc_invariant_to_monotone_transform(scores, labels):
    n = min(len(scores), len(labels))
    # round to a coarse grid so the affine map preserves tie structure
    # exactly in float64 (tiny magnitudes would collapse into new ties)
    scores = np.round(np.array(scores[:n]), 2)
    y = np.array(labels[:n])
    if len(np.unique(y)) < 2:
        return
    original = roc_auc_score(y, scores)
    transformed = roc_auc_score(y, 3.0 * scores + 7.0)
    assert abs(original - transformed) < 1e-12


@given(
    st.lists(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=3, max_size=3),
        min_size=2,
        max_size=40,
    )
)
@settings(max_examples=50)
def test_scaler_transform_is_affine_invertible(rows):
    X = np.array(rows)
    scaler = StandardScaler().fit(X)
    Z = scaler.transform(X)
    recovered = Z * scaler.scale_ + scaler.mean_
    assert np.allclose(recovered, X, rtol=1e-6, atol=1e-6)


@given(
    st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=4, max_size=40),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30)
def test_kfold_is_partition_property(values, seed):
    from repro.ml import KFold

    n = len(values)
    if n < 2:
        return
    folds = KFold(n_splits=2, random_state=seed)
    seen = []
    for train, test in folds.split(n):
        assert set(train).isdisjoint(test)
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(n))
