"""Tests for folds, splitting and grid search."""

import numpy as np
import pytest

from repro.ml import (
    BaseClassifier,
    GridSearchCV,
    KFold,
    KNearestNeighborsClassifier,
    LogisticRegressionClassifier,
    StratifiedKFold,
    cross_val_predict_proba,
    train_test_split,
)


def test_kfold_covers_all_indices_exactly_once():
    seen = []
    for __, test in KFold(n_splits=4, random_state=0).split(20):
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(20))


def test_kfold_train_test_disjoint():
    for train, test in KFold(n_splits=3, random_state=1).split(15):
        assert not set(train) & set(test)
        assert len(train) + len(test) == 15


def test_kfold_too_few_samples():
    with pytest.raises(ValueError):
        list(KFold(n_splits=5).split(3))


def test_kfold_invalid_n_splits():
    with pytest.raises(ValueError):
        KFold(n_splits=1)


def test_stratified_kfold_preserves_ratio():
    y = np.array([0] * 40 + [1] * 10)
    for __, test in StratifiedKFold(n_splits=5, random_state=0).split(y):
        positives = y[test].sum()
        assert positives == 2  # 10 positives over 5 folds


def test_stratified_kfold_rare_class_guard():
    y = np.array([0] * 10 + [1] * 2)
    with pytest.raises(ValueError, match="class"):
        list(StratifiedKFold(n_splits=5).split(y))


def test_stratified_kfold_partition():
    y = np.array([0, 1] * 10)
    seen = []
    for __, test in StratifiedKFold(n_splits=2, random_state=3).split(y):
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(20))


def test_train_test_split_shapes():
    X = np.arange(40).reshape(20, 2)
    y = np.arange(20) % 2
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, 0.25, np.random.default_rng(0)
    )
    assert X_train.shape == (15, 2)
    assert X_test.shape == (5, 2)
    assert len(y_train) == 15 and len(y_test) == 5


def test_train_test_split_keeps_pairs_aligned():
    X = np.arange(20).reshape(20, 1)
    y = np.arange(20)
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, 0.3, np.random.default_rng(7)
    )
    assert np.array_equal(X_train[:, 0], y_train)
    assert np.array_equal(X_test[:, 0], y_test)


def test_train_test_split_length_mismatch():
    with pytest.raises(ValueError):
        train_test_split(np.zeros((3, 1)), np.zeros(4), 0.5, np.random.default_rng(0))


def make_blobs(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n // 2, 2))
    X1 = rng.normal(2.5, 1.0, size=(n // 2, 2))
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(n // 2), np.ones(n // 2)]).astype(int)
    return X, y


def test_grid_search_picks_some_candidate_and_scores():
    X, y = make_blobs()
    search = GridSearchCV(
        LogisticRegressionClassifier(),
        {"C": [0.01, 1.0, 100.0]},
        n_splits=3,
        random_state=0,
    ).fit(X, y)
    assert search.best_params_["C"] in (0.01, 1.0, 100.0)
    assert 0.5 < search.best_score_ <= 1.0
    assert len(search.cv_results_) == 3


def test_grid_search_refits_on_full_data():
    X, y = make_blobs()
    search = GridSearchCV(
        KNearestNeighborsClassifier(), {"n_neighbors": [1, 5]}, n_splits=3
    ).fit(X, y)
    assert search.predict(X).shape == (len(y),)
    assert search.predict_proba(X).shape == (len(y), 2)


def test_grid_search_multi_param_grid_size():
    X, y = make_blobs()
    search = GridSearchCV(
        LogisticRegressionClassifier(),
        {"C": [0.1, 1.0], "max_iter": [50, 100]},
        n_splits=3,
    ).fit(X, y)
    assert len(search.cv_results_) == 4


def test_grid_search_empty_grid_rejected():
    with pytest.raises(ValueError):
        GridSearchCV(LogisticRegressionClassifier(), {})


def test_grid_search_unfitted_raises():
    search = GridSearchCV(LogisticRegressionClassifier(), {"C": [1.0]})
    with pytest.raises(RuntimeError):
        search.predict(np.zeros((1, 2)))


def test_grid_search_deterministic_under_seed():
    X, y = make_blobs()
    a = GridSearchCV(
        LogisticRegressionClassifier(), {"C": [0.1, 1.0, 10.0]}, random_state=5
    ).fit(X, y)
    b = GridSearchCV(
        LogisticRegressionClassifier(), {"C": [0.1, 1.0, 10.0]}, random_state=5
    ).fit(X, y)
    assert a.best_params_ == b.best_params_
    assert a.best_score_ == b.best_score_


class _ConstantClassifier(BaseClassifier):
    """Predicts all-positive regardless of ``flavor``: every candidate
    of a ``flavor`` grid scores identically, exposing tie-breaking."""

    def __init__(self, flavor: int = 0) -> None:
        self.flavor = flavor

    def fit(self, X, y):
        self._check_fit_inputs(X, y)
        return self

    def predict_proba(self, X):
        X = self._check_predict_inputs(X)
        return np.column_stack([np.zeros(len(X)), np.ones(len(X))])


def test_grid_search_tie_breaking_first_candidate_wins():
    """The fast path's byte-identical guarantee depends on strict ``>``
    selection: on equal mean scores the first candidate in odometer
    order must win. Pinned here as a regression contract."""
    X, y = make_blobs(n=60)
    for use_fast_path in (False, True):
        search = GridSearchCV(
            _ConstantClassifier(),
            {"flavor": [7, 1, 3]},
            n_splits=3,
            use_fast_path=use_fast_path,
        ).fit(X, y)
        scores = [entry["score"] for entry in search.cv_results_]
        assert scores[0] == scores[1] == scores[2]
        assert search.best_params_ == {"flavor": 7}


def test_grid_search_equal_scoring_duplicate_values_pick_first():
    X, y = make_blobs()
    search = GridSearchCV(
        KNearestNeighborsClassifier(),
        {"n_neighbors": [5, 5, 5]},
        n_splits=3,
    ).fit(X, y)
    scores = [entry["score"] for entry in search.cv_results_]
    assert len(set(scores)) == 1
    assert search.best_score_ == scores[0]


def test_stratified_kfold_assignment_deterministic_across_calls():
    """Identical folds from repeated splits and fresh splitter objects —
    the fast path scores the same folds the naive path would."""
    y = (np.arange(40) % 3 == 0).astype(int)
    first = [
        (train.tolist(), test.tolist())
        for train, test in StratifiedKFold(4, 9).split(y)
    ]
    again = [
        (train.tolist(), test.tolist())
        for train, test in StratifiedKFold(4, 9).split(y)
    ]
    assert first == again


def test_stratified_kfold_assignment_pinned():
    """Exact fold membership for a fixed (y, seed); any change to the
    assignment algorithm breaks stored-study reproducibility."""
    y = np.array([0, 1] * 8 + [0, 0, 1, 1])
    folds = [sorted(test.tolist()) for __, test in StratifiedKFold(3, 42).split(y)]
    assert folds == [
        [3, 8, 9, 10, 13, 14, 15, 16],
        [6, 7, 11, 12, 17, 18],
        [0, 1, 2, 4, 5, 19],
    ]


def test_cross_val_predict_proba_out_of_fold():
    X, y = make_blobs(n=100)
    proba = cross_val_predict_proba(
        LogisticRegressionClassifier(), X, y, n_splits=5, random_state=0
    )
    assert proba.shape == (100,)
    assert ((proba >= 0) & (proba <= 1)).all()
    # separable data: out-of-fold probabilities should still classify well
    assert np.mean((proba >= 0.5).astype(int) == y) > 0.9
