"""Tests for the regression tree core."""

import numpy as np
import pytest

from repro.ml import DecisionTreeRegressor


def test_single_leaf_predicts_mean():
    X = np.array([[0.0], [1.0], [2.0]])
    y = np.array([1.0, 2.0, 6.0])
    model = DecisionTreeRegressor(max_depth=0).fit(X, y)
    assert np.allclose(model.predict(X), 3.0)


def test_perfect_step_function_fit():
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([0.0, 0.0, 10.0, 10.0])
    model = DecisionTreeRegressor(max_depth=1).fit(X, y)
    assert np.allclose(model.predict(X), y)


def test_depth_limit_respected():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    y = rng.normal(size=200)
    model = DecisionTreeRegressor(max_depth=2).fit(X, y)
    assert model.depth() <= 2


def test_min_samples_leaf():
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([0.0, 0.0, 0.0, 100.0])
    model = DecisionTreeRegressor(max_depth=3, min_samples_leaf=2).fit(X, y)
    # the lone extreme point cannot be isolated in its own leaf
    predictions = model.predict(X)
    assert predictions[3] < 100.0


def test_constant_features_yield_single_leaf():
    X = np.ones((10, 2))
    y = np.arange(10, dtype=float)
    model = DecisionTreeRegressor(max_depth=5).fit(X, y)
    assert model.depth() == 0
    assert np.allclose(model.predict(X), y.mean())


def test_constant_target_yields_single_leaf():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(50, 2))
    y = np.full(50, 7.0)
    model = DecisionTreeRegressor(max_depth=4).fit(X, y)
    assert np.allclose(model.predict(X), 7.0)


def test_deeper_trees_reduce_training_error():
    rng = np.random.default_rng(2)
    X = rng.uniform(-2, 2, size=(300, 1))
    y = np.sin(3 * X[:, 0])
    shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
    deep = DecisionTreeRegressor(max_depth=5).fit(X, y)
    err_shallow = np.mean((shallow.predict(X) - y) ** 2)
    err_deep = np.mean((deep.predict(X) - y) ** 2)
    assert err_deep < err_shallow


def test_invalid_params():
    with pytest.raises(ValueError):
        DecisionTreeRegressor(max_depth=-1)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(min_samples_leaf=0)


def test_bad_shapes_rejected():
    with pytest.raises(ValueError):
        DecisionTreeRegressor().fit(np.zeros(3), np.zeros(3))
    with pytest.raises(ValueError):
        DecisionTreeRegressor().fit(np.zeros((3, 1)), np.zeros(4))


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        DecisionTreeRegressor().predict(np.zeros((1, 1)))


def test_splits_ignore_row_order():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(100, 2))
    y = (X[:, 0] > 0).astype(float) * 5.0
    model_a = DecisionTreeRegressor(max_depth=2).fit(X, y)
    permutation = rng.permutation(100)
    model_b = DecisionTreeRegressor(max_depth=2).fit(X[permutation], y[permutation])
    probe = rng.normal(size=(20, 2))
    assert np.allclose(model_a.predict(probe), model_b.predict(probe))
