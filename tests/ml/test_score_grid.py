"""Fast-path (``score_grid``) vs naive grid-search identity tests.

The shared-computation kernels must reproduce the clone-per-candidate
loop bit for bit: same per-candidate predictions, same ``cv_results_``
scores, same selected hyperparameters. These tests run both paths on
every model of the study registry (the paper's grids) and on richer
grids that actually exercise the sharing — including tie-heavy data
for the kNN boundary-tie fallback and subsampled boosting for the
RNG-prefix property.
"""

import numpy as np
import pytest

from repro.benchmark.models import MODEL_NAMES, model_search
from repro.fairness.metrics import equal_opportunity
from repro.ml import (
    FairnessConstrainedSearch,
    GradientBoostedTreesClassifier,
    GridSearchCV,
    KNearestNeighborsClassifier,
    LogisticRegressionClassifier,
    clone,
    split_single_parameter_grid,
)
from repro.ml.model_selection import StratifiedKFold, iter_grid_candidates


def make_data(n=240, d=6, seed=0, scale=1.5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = ((X @ w + rng.normal(scale=scale, size=n)) > 0).astype(int)
    return X, y


def make_tied_data(n=160, d=4, seed=1):
    """Binary features: many duplicate rows, hence exact distance ties."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n, d)).astype(float)
    y = rng.integers(0, 2, size=n)
    return X, y


def assert_searches_identical(naive, fast):
    assert naive.best_params_ == fast.best_params_
    assert naive.best_score_ == fast.best_score_
    assert [entry["params"] for entry in naive.cv_results_] == [
        entry["params"] for entry in fast.cv_results_
    ]
    assert [entry["score"] for entry in naive.cv_results_] == [
        entry["score"] for entry in fast.cv_results_
    ]


def fit_both_paths(estimator, grid, X, y, n_splits=3, random_state=7):
    naive = GridSearchCV(
        estimator, grid, n_splits=n_splits, random_state=random_state,
        use_fast_path=False,
    ).fit(X, y)
    fast = GridSearchCV(
        estimator, grid, n_splits=n_splits, random_state=random_state,
        use_fast_path=True,
    ).fit(X, y)
    return naive, fast


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_study_registry_grids_identical(name):
    """The paper's actual model grids select identically on both paths."""
    X, y = make_data(n=200, seed=3)
    naive = model_search(name, tuning_seed=11, fast_path=False).fit(X, y)
    fast = model_search(name, tuning_seed=11, fast_path=True).fit(X, y)
    assert_searches_identical(naive, fast)
    assert np.array_equal(naive.predict(X), fast.predict(X))


def test_knn_grid_identical_on_continuous_data():
    X, y = make_data(seed=0)
    naive, fast = fit_both_paths(
        KNearestNeighborsClassifier(), {"n_neighbors": [1, 3, 5, 9, 15, 31]}, X, y
    )
    assert_searches_identical(naive, fast)


def test_knn_grid_identical_under_distance_ties():
    """Duplicate rows force boundary ties; the per-row fallback must
    replay the naive argpartition selection exactly."""
    X, y = make_tied_data()
    naive, fast = fit_both_paths(
        KNearestNeighborsClassifier(),
        {"n_neighbors": [1, 3, 5, 7, 15]},
        X,
        y,
        random_state=3,
    )
    assert_searches_identical(naive, fast)


def test_knn_score_grid_matches_per_candidate_predictions():
    X, y = make_tied_data(seed=5)
    candidates = [{"n_neighbors": k} for k in (1, 2, 4, 8, 160, 500)]
    folds = list(StratifiedKFold(3, 0).split(y))
    for train_idx, test_idx in folds:
        fast = KNearestNeighborsClassifier().score_grid(
            X[train_idx], y[train_idx], X[test_idx], y[test_idx], candidates
        )
        assert fast.shape == (len(candidates), len(test_idx))
        for index, candidate in enumerate(candidates):
            model = clone(KNearestNeighborsClassifier()).set_params(**candidate)
            model.fit(X[train_idx], y[train_idx])
            assert np.array_equal(fast[index], model.predict(X[test_idx]))


def test_knn_caches_train_norms_at_fit_time():
    X, y = make_data(n=60)
    model = KNearestNeighborsClassifier(n_neighbors=3).fit(X, y)
    assert model._train_sq is not None
    np.testing.assert_array_equal(model._train_sq, np.sum(X**2, axis=1))
    first = model.predict_proba(X)
    second = model.predict_proba(X)
    np.testing.assert_array_equal(first, second)


def test_booster_staged_n_estimators_grid_identical():
    X, y = make_data(seed=2)
    naive, fast = fit_both_paths(
        GradientBoostedTreesClassifier(max_depth=3, learning_rate=0.2),
        {"n_estimators": [3, 6, 12]},
        X,
        y,
    )
    assert_searches_identical(naive, fast)


def test_booster_subsampled_multi_param_grid_identical():
    """Grouped staged evaluation with a live subsampling RNG: the
    m-round prefix of a longer run must equal an m-round fit."""
    X, y = make_data(seed=4)
    naive, fast = fit_both_paths(
        GradientBoostedTreesClassifier(
            learning_rate=0.2, subsample=0.7, random_state=5
        ),
        {"n_estimators": [3, 7], "max_depth": [2, 3]},
        X,
        y,
    )
    assert_searches_identical(naive, fast)


def test_logistic_warm_start_path_identical():
    X, y = make_data(seed=6)
    naive, fast = fit_both_paths(
        LogisticRegressionClassifier(),
        {"C": [0.003, 0.03, 0.3, 3.0, 30.0]},
        X,
        y,
    )
    assert_searches_identical(naive, fast)


def test_unsupported_grid_falls_back_to_naive():
    """A grid the estimator declines still searches correctly."""
    X, y = make_data(n=150, seed=8)
    naive, fast = fit_both_paths(
        GradientBoostedTreesClassifier(n_estimators=4),
        {"learning_rate": [0.1, 0.3]},
        X,
        y,
    )
    assert_searches_identical(naive, fast)
    assert (
        GradientBoostedTreesClassifier().score_grid(
            X, y, X, y, [{"learning_rate": 0.1}, {"learning_rate": 0.3}]
        )
        is None
    )


def test_score_grid_declines_single_candidate_and_bad_values():
    X, y = make_data(n=120, seed=9)
    knn = KNearestNeighborsClassifier()
    assert knn.score_grid(X, y, X, y, [{"n_neighbors": 5}]) is None
    assert knn.score_grid(
        X, y, X, y, [{"n_neighbors": 0}, {"n_neighbors": 5}]
    ) is None
    log_reg = LogisticRegressionClassifier()
    assert log_reg.score_grid(X, y, X, y, [{"C": -1.0}, {"C": 1.0}]) is None
    booster = GradientBoostedTreesClassifier()
    assert booster.score_grid(
        X, y, X, y, [{"n_estimators": 0}, {"n_estimators": 5}]
    ) is None


def test_split_single_parameter_grid_shapes():
    candidates = [{"C": 0.1, "max_iter": 50}, {"C": 1.0, "max_iter": 50}]
    fixed, name, values = split_single_parameter_grid(candidates)
    assert fixed == {"max_iter": 50}
    assert name == "C"
    assert values == [0.1, 1.0]
    # two varying keys: not a single-parameter grid
    assert split_single_parameter_grid(
        [{"C": 0.1, "max_iter": 50}, {"C": 1.0, "max_iter": 100}]
    ) is None
    assert split_single_parameter_grid([{"C": 0.1}]) is None


def test_cv_results_carry_timing_hook_on_both_paths():
    X, y = make_data(n=150, seed=10)
    naive, fast = fit_both_paths(
        KNearestNeighborsClassifier(), {"n_neighbors": [1, 5]}, X, y
    )
    for search in (naive, fast):
        for entry in search.cv_results_:
            assert entry["fit_seconds"] >= 0.0
            assert entry["score_seconds"] >= 0.0


def test_fair_search_fast_path_identical():
    X, y = make_data(n=210, seed=12)
    rng = np.random.default_rng(12)
    privileged = rng.random(len(y)) < 0.5
    disadvantaged = ~privileged

    def run(use_fast_path):
        return FairnessConstrainedSearch(
            KNearestNeighborsClassifier(),
            {"n_neighbors": [1, 3, 5, 9]},
            metric=equal_opportunity,
            max_disparity=0.2,
            n_splits=3,
            random_state=2,
            use_fast_path=use_fast_path,
        ).fit(X, y, privileged, disadvantaged)

    naive, fast = run(False), run(True)
    assert naive.best_params_ == fast.best_params_
    assert naive.best_accuracy_ == fast.best_accuracy_
    assert naive.best_disparity_ == fast.best_disparity_
    assert naive.constraint_satisfied_ == fast.constraint_satisfied_
    assert naive.cv_results_ == fast.cv_results_


def test_iter_grid_candidates_shared_between_searches():
    grid = {"a": [1, 2], "b": [3, 4]}
    assert list(iter_grid_candidates(grid)) == [
        {"a": 1, "b": 3},
        {"a": 2, "b": 3},
        {"a": 1, "b": 4},
        {"a": 2, "b": 4},
    ]
