"""Hypothesis invariants for the vectorised group-confusion counting.

``group_confusions_from_masks`` runs inside the study's parallel hot
path (one call per model prediction), so its bincount-based counting
is property-tested against the two accounting identities any confusion
decomposition must satisfy:

1. per group, ``tp + fp + tn + fn`` equals the group's size, and
2. the pooled confusion over everything equals the cell-wise sum of
   the confusions of any partition of the rows into groups.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fairness.confusion import group_confusions_from_masks


def _arrays(draw, n):
    bits = st.lists(st.integers(0, 1), min_size=n, max_size=n)
    y_true = np.array(draw(bits), dtype=np.int64)
    y_pred = np.array(draw(bits), dtype=np.int64)
    return y_true, y_pred


@st.composite
def labelled_masks(draw):
    """(y_true, y_pred, masks): random labels plus random group masks."""
    n = draw(st.integers(min_value=1, max_value=40))
    y_true, y_pred = _arrays(draw, n)
    n_groups = draw(st.integers(min_value=1, max_value=3))
    masks = []
    for index in range(n_groups):
        bools = st.lists(st.booleans(), min_size=n, max_size=n)
        privileged = np.array(draw(bools), dtype=bool)
        disadvantaged = np.array(draw(bools), dtype=bool)
        masks.append((f"g{index}", privileged, disadvantaged))
    return y_true, y_pred, masks


@given(labelled_masks())
@settings(max_examples=100, deadline=None)
def test_confusion_cells_sum_to_group_sizes(case):
    y_true, y_pred, masks = case
    groups = group_confusions_from_masks(y_true, y_pred, masks)
    assert len(groups) == len(masks)
    for confusion, (key, privileged, disadvantaged) in zip(groups, masks):
        assert confusion.group_key == key
        for matrix, mask in (
            (confusion.privileged, privileged),
            (confusion.disadvantaged, disadvantaged),
        ):
            total = matrix.tp + matrix.fp + matrix.tn + matrix.fn
            assert total == int(mask.sum())


@st.composite
def labelled_partition(draw):
    """(y_true, y_pred, parts): labels plus a partition of the rows."""
    n = draw(st.integers(min_value=1, max_value=40))
    y_true, y_pred = _arrays(draw, n)
    n_parts = draw(st.integers(min_value=1, max_value=4))
    assignment = np.array(
        draw(st.lists(st.integers(0, n_parts - 1), min_size=n, max_size=n))
    )
    parts = [assignment == part for part in range(n_parts)]
    return y_true, y_pred, parts


@given(labelled_partition())
@settings(max_examples=100, deadline=None)
def test_pooled_confusion_equals_sum_over_partition(case):
    y_true, y_pred, parts = case
    everyone = np.ones(len(y_true), dtype=bool)
    masks = [("pooled", everyone, everyone)] + [
        (f"part{index}", part, part) for index, part in enumerate(parts)
    ]
    pooled, *groups = group_confusions_from_masks(y_true, y_pred, masks)
    for cell in ("tp", "fp", "tn", "fn"):
        pooled_count = getattr(pooled.privileged, cell)
        summed = sum(getattr(group.privileged, cell) for group in groups)
        assert pooled_count == summed


@given(labelled_masks())
@settings(max_examples=50, deadline=None)
def test_privileged_and_disadvantaged_counted_independently(case):
    """Each mask side is counted from the same code vector: swapping the
    mask order must swap the matrices verbatim."""
    y_true, y_pred, masks = case
    swapped = [(key, dis, priv) for key, priv, dis in masks]
    forward = group_confusions_from_masks(y_true, y_pred, masks)
    backward = group_confusions_from_masks(y_true, y_pred, swapped)
    for before, after in zip(forward, backward):
        assert before.privileged == after.disadvantaged
        assert before.disadvantaged == after.privileged
