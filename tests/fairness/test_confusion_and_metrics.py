"""Tests for group-wise confusion matrices and fairness metrics."""

import numpy as np
import pytest

from repro.fairness import (
    Comparison,
    GroupPredicate,
    GroupSpec,
    IntersectionalSpec,
    accuracy_parity,
    demographic_parity,
    equal_opportunity,
    equalized_odds,
    false_positive_rate_parity,
    group_confusion_matrices,
    group_confusions_from_masks,
    group_masks,
    predictive_parity,
    result_store_keys,
)
from repro.fairness.confusion import confusion_codes
from repro.ml.metrics import ConfusionMatrix
from repro.tabular import Table

SEX = GroupSpec("sex", GroupPredicate("sex", Comparison.EQ, "male"))
AGE = GroupSpec("age", GroupPredicate("age", Comparison.GT, 25))


def make_scored_table():
    table = Table.from_columns(
        {
            "sex": ["male", "male", "male", "female", "female", "female"],
            "age": [30.0, 40.0, 20.0, 30.0, 20.0, 22.0],
        }
    )
    y_true = np.array([1, 0, 1, 1, 0, 1])
    y_pred = np.array([1, 1, 0, 0, 0, 1])
    return table, y_true, y_pred


def test_group_confusion_counts():
    table, y_true, y_pred = make_scored_table()
    group = group_confusion_matrices(table, y_true, y_pred, SEX)
    assert group.privileged.as_dict() == {"tn": 0, "fp": 1, "fn": 1, "tp": 1}
    assert group.disadvantaged.as_dict() == {"tn": 1, "fp": 0, "fn": 1, "tp": 1}


def test_group_confusion_totals_cover_partition():
    table, y_true, y_pred = make_scored_table()
    group = group_confusion_matrices(table, y_true, y_pred, SEX)
    assert group.privileged.total + group.disadvantaged.total == len(y_true)


def test_intersectional_confusion_excludes_mixed():
    table, y_true, y_pred = make_scored_table()
    spec = IntersectionalSpec(SEX, AGE)
    group = group_confusion_matrices(table, y_true, y_pred, spec)
    # privileged: male & >25 -> rows 0,1 ; disadvantaged: female & <=25 -> rows 4,5
    assert group.privileged.total == 2
    assert group.disadvantaged.total == 2


def test_length_mismatch_rejected():
    table, y_true, y_pred = make_scored_table()
    with pytest.raises(ValueError):
        group_confusion_matrices(table, y_true[:-1], y_pred[:-1], SEX)


def test_result_store_keys_single_attribute():
    table, y_true, y_pred = make_scored_table()
    group = group_confusion_matrices(table, y_true, y_pred, SEX)
    keys = result_store_keys("impute_mean_dummy", group)
    assert keys["impute_mean_dummy__sex_priv__tp"] == 1
    assert keys["impute_mean_dummy__sex_dis__tn"] == 1
    assert len(keys) == 8


def test_result_store_keys_intersectional():
    table, y_true, y_pred = make_scored_table()
    group = group_confusion_matrices(
        table, y_true, y_pred, IntersectionalSpec(SEX, AGE)
    )
    keys = result_store_keys("impute_mean_dummy", group)
    assert "impute_mean_dummy__sex_priv__age_priv__tp" in keys
    assert "impute_mean_dummy__sex_dis__age_dis__fn" in keys
    assert len(keys) == 8


PRIV = ConfusionMatrix(tn=50, fp=10, fn=5, tp=35)   # precision .777, recall .875
DIS = ConfusionMatrix(tn=55, fp=5, fn=20, tp=20)    # precision .8, recall .5


def test_predictive_parity_signed_disparity():
    assert predictive_parity(PRIV, DIS) == pytest.approx(35 / 45 - 20 / 25)


def test_equal_opportunity_signed_disparity():
    assert equal_opportunity(PRIV, DIS) == pytest.approx(35 / 40 - 20 / 40)


def test_metrics_zero_on_identical_groups():
    for metric in (
        predictive_parity,
        equal_opportunity,
        demographic_parity,
        false_positive_rate_parity,
        equalized_odds,
        accuracy_parity,
    ):
        assert metric(PRIV, PRIV) == pytest.approx(0.0)


def test_metrics_antisymmetric():
    for metric in (
        predictive_parity,
        equal_opportunity,
        demographic_parity,
        false_positive_rate_parity,
        accuracy_parity,
    ):
        assert metric(PRIV, DIS) == pytest.approx(-metric(DIS, PRIV))


def test_demographic_parity():
    assert demographic_parity(PRIV, DIS) == pytest.approx(45 / 100 - 25 / 100)


def test_false_positive_rate_parity():
    assert false_positive_rate_parity(PRIV, DIS) == pytest.approx(
        10 / 60 - 5 / 60
    )


def test_equalized_odds_picks_larger_gap():
    assert equalized_odds(PRIV, DIS) == pytest.approx(
        equal_opportunity(PRIV, DIS)
    )


def test_accuracy_parity():
    assert accuracy_parity(PRIV, DIS) == pytest.approx(85 / 100 - 75 / 100)


def test_predictive_parity_nan_when_degenerate():
    empty_positive = ConfusionMatrix(tn=10, fp=0, fn=0, tp=0)
    assert np.isnan(predictive_parity(empty_positive, DIS))


def test_group_confusion_metric_value_helper():
    table, y_true, y_pred = make_scored_table()
    group = group_confusion_matrices(table, y_true, y_pred, SEX)
    assert group.metric_value(equal_opportunity) == pytest.approx(
        group.privileged.recall - group.disadvantaged.recall
    )


# -- vectorised counting ------------------------------------------------


def test_confusion_codes_layout():
    codes = confusion_codes(np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1]))
    assert codes.tolist() == [0, 1, 2, 3]  # tn, fp, fn, tp


def test_confusion_codes_reject_non_binary():
    with pytest.raises(ValueError, match="0/1"):
        confusion_codes(np.array([0, 2]), np.array([0, 1]))
    with pytest.raises(ValueError, match="shape"):
        confusion_codes(np.array([0, 1]), np.array([0]))


def test_masked_confusions_match_per_group_counting():
    """The bincount accumulation must agree with brute-force masked
    confusion matrices on random inputs."""
    from repro.ml.metrics import confusion_matrix

    rng = np.random.default_rng(7)
    for trial in range(20):
        n = int(rng.integers(1, 200))
        y_true = rng.integers(0, 2, size=n)
        y_pred = rng.integers(0, 2, size=n)
        priv = rng.random(n) < 0.5
        dis = ~priv & (rng.random(n) < 0.8)  # not a partition, like specs
        (group,) = group_confusions_from_masks(
            y_true, y_pred, [("sex", priv, dis)]
        )
        assert group.privileged == confusion_matrix(y_true[priv], y_pred[priv])
        assert group.disadvantaged == confusion_matrix(y_true[dis], y_pred[dis])


def test_group_masks_reused_across_predictions():
    table, y_true, y_pred = make_scored_table()
    masks = group_masks(table, [SEX, IntersectionalSpec(SEX, AGE)])
    assert [key for key, __, __ in masks] == ["sex", "sex_x_age"]
    via_masks = group_confusions_from_masks(y_true, y_pred, masks)
    assert via_masks[0] == group_confusion_matrices(table, y_true, y_pred, SEX)
    assert via_masks[1] == group_confusion_matrices(
        table, y_true, y_pred, IntersectionalSpec(SEX, AGE)
    )
    # a second prediction vector reuses the same masks
    flipped = 1 - y_pred
    again = group_confusions_from_masks(y_true, flipped, masks)
    assert again[0] == group_confusion_matrices(table, y_true, flipped, SEX)


def test_empty_group_yields_zero_counts():
    table, y_true, y_pred = make_scored_table()
    nobody = np.zeros(len(y_true), dtype=bool)
    (group,) = group_confusions_from_masks(
        y_true, y_pred, [("ghost", nobody, nobody)]
    )
    assert group.privileged.total == 0
    assert group.disadvantaged.total == 0
