"""Tests for group predicates and specs."""

import numpy as np
import pytest

from repro.fairness import Comparison, GroupPredicate, GroupSpec, IntersectionalSpec
from repro.tabular import Table


def make_table():
    return Table.from_columns(
        {
            "sex": ["male", "female", "male", "female", None],
            "age": [30.0, 22.0, 55.0, 40.0, np.nan],
            "race": ["white", "black", "black", "white", "white"],
        }
    )


SEX = GroupSpec("sex", GroupPredicate("sex", Comparison.EQ, "male"))
AGE = GroupSpec("age", GroupPredicate("age", Comparison.GT, 25))


def test_categorical_eq_predicate():
    mask = SEX.privileged_mask(make_table())
    assert list(mask) == [True, False, True, False, False]


def test_numeric_gt_predicate():
    mask = AGE.privileged_mask(make_table())
    assert list(mask) == [True, False, True, True, False]


def test_disadvantaged_excludes_missing():
    mask = SEX.disadvantaged_mask(make_table())
    # the None row belongs to neither group
    assert list(mask) == [False, True, False, True, False]


def test_numeric_missing_in_neither_group():
    table = make_table()
    privileged = AGE.privileged_mask(table)
    disadvantaged = AGE.disadvantaged_mask(table)
    assert not privileged[4] and not disadvantaged[4]


def test_all_numeric_comparisons():
    table = Table.from_columns({"v": [1.0, 2.0, 3.0]})
    cases = {
        Comparison.EQ: [False, True, False],
        Comparison.GT: [False, False, True],
        Comparison.GE: [False, True, True],
        Comparison.LT: [True, False, False],
        Comparison.LE: [True, True, False],
    }
    for comparison, expected in cases.items():
        mask = GroupPredicate("v", comparison, 2).evaluate(table)
        assert list(mask) == expected, comparison


def test_categorical_non_eq_rejected():
    with pytest.raises(ValueError, match="EQ"):
        GroupPredicate("sex", Comparison.GT, "male").evaluate(make_table())


def test_unknown_attribute_raises():
    with pytest.raises(KeyError, match="sensitive attribute"):
        GroupPredicate("ghost", Comparison.EQ, "x").evaluate(make_table())


def test_single_attribute_partition_among_defined():
    table = make_table()
    privileged = SEX.privileged_mask(table)
    disadvantaged = SEX.disadvantaged_mask(table)
    defined = SEX.privileged.defined(table)
    assert not (privileged & disadvantaged).any()
    assert np.array_equal(privileged | disadvantaged, defined)


def test_intersectional_masks():
    spec = IntersectionalSpec(SEX, AGE)
    table = make_table()
    privileged = spec.privileged_mask(table)
    disadvantaged = spec.disadvantaged_mask(table)
    # male & >25: rows 0, 2; female & <=25: row 1
    assert list(privileged) == [True, False, True, False, False]
    assert list(disadvantaged) == [False, True, False, False, False]


def test_intersectional_excludes_mixed_tuples():
    spec = IntersectionalSpec(SEX, AGE)
    table = make_table()
    # row 3 is female (disadvantaged) but >25 (privileged) -> excluded
    in_either = spec.privileged_mask(table) | spec.disadvantaged_mask(table)
    assert not in_either[3]


def test_keys():
    assert SEX.key == "sex"
    assert IntersectionalSpec(SEX, AGE).key == "sex_x_age"
