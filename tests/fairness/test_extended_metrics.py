"""Tests for the extended fairness-metric registry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fairness.metrics import ALL_FAIRNESS_METRICS, FAIRNESS_METRICS
from repro.ml.metrics import ConfusionMatrix

_counts = st.integers(min_value=0, max_value=500)


@st.composite
def confusion_matrices(draw):
    return ConfusionMatrix(
        tn=draw(_counts), fp=draw(_counts), fn=draw(_counts), tp=draw(_counts)
    )


def test_paper_metrics_are_subset_of_registry():
    assert set(FAIRNESS_METRICS) <= set(ALL_FAIRNESS_METRICS)
    assert set(FAIRNESS_METRICS) == {"PP", "EO"}


def test_registry_contains_followup_metrics():
    assert {"DP", "FPRP", "EOdds", "AP"} <= set(ALL_FAIRNESS_METRICS)


@given(confusion_matrices())
def test_all_metrics_zero_on_self(cm):
    for name, metric in ALL_FAIRNESS_METRICS.items():
        value = metric(cm, cm)
        assert np.isnan(value) or value == pytest.approx(0.0), name


@given(confusion_matrices(), confusion_matrices())
def test_all_metrics_bounded_by_one(a, b):
    for name, metric in ALL_FAIRNESS_METRICS.items():
        value = metric(a, b)
        assert np.isnan(value) or -1.0 <= value <= 1.0, name


@given(confusion_matrices(), confusion_matrices())
def test_equalized_odds_dominates_components(a, b):
    from repro.fairness.metrics import (
        equal_opportunity,
        equalized_odds,
        false_positive_rate_parity,
    )

    eo = equal_opportunity(a, b)
    fpr = false_positive_rate_parity(a, b)
    eodds = equalized_odds(a, b)
    if not (np.isnan(eo) or np.isnan(fpr)):
        assert abs(eodds) == pytest.approx(max(abs(eo), abs(fpr)))
