"""Tests for the shared synthetic-generation building blocks."""

import numpy as np
import pytest

from repro.datasets import synthetic as syn
from repro.tabular import CategoricalColumn


def rng():
    return np.random.default_rng(0)


def test_sigmoid_range_and_symmetry():
    z = np.linspace(-50, 50, 101)
    p = syn.sigmoid(z)
    assert ((p >= 0) & (p <= 1)).all()
    assert np.allclose(p + syn.sigmoid(-z), 1.0)
    assert syn.sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)


def test_sigmoid_extreme_values_stable():
    p = syn.sigmoid(np.array([-1000.0, 1000.0]))
    assert p[0] == pytest.approx(0.0)
    assert p[1] == pytest.approx(1.0)


def test_categorical_respects_probabilities():
    values = syn.categorical(rng(), 20_000, ["a", "b"], [0.8, 0.2])
    share_a = values.eq("a").mean()
    assert 0.77 < share_a < 0.83


def test_categorical_returns_encoded_column():
    values = syn.categorical(rng(), 100, ["a", "b"], [0.5, 0.5])
    assert isinstance(values, CategoricalColumn)
    assert values.pool == ("a", "b")
    assert values.codes.dtype == np.int32


def test_categorical_normalises_weights():
    values = syn.categorical(rng(), 1_000, ["a", "b"], [8, 2])
    assert set(values.decode()) == {"a", "b"}


def test_take_categories_wraps_indices():
    column = syn.take_categories(np.array([2, 0, 1]), ["x", "y", "z"])
    assert list(column.decode()) == ["z", "x", "y"]


def test_clipped_normal_bounds():
    values = syn.clipped_normal(rng(), 10_000, 0.0, 100.0, -5.0, 5.0)
    assert values.min() >= -5.0
    assert values.max() <= 5.0


def test_lognormal_positive():
    assert (syn.lognormal(rng(), 1_000, 0.0, 1.0) > 0).all()


def test_zero_inflated_lognormal_zero_fraction():
    values = syn.zero_inflated_lognormal(rng(), 20_000, 0.9, 5.0, 1.0)
    zero_share = np.mean(values == 0.0)
    assert 0.88 < zero_share < 0.92
    assert (values >= 0).all()


def test_inject_missing_numeric_rate():
    values = syn.inject_missing_numeric(rng(), np.ones(20_000), 0.25)
    assert 0.22 < np.isnan(values).mean() < 0.28


def test_inject_missing_numeric_does_not_mutate_input():
    original = np.ones(100)
    syn.inject_missing_numeric(rng(), original, 0.5)
    assert not np.isnan(original).any()


def test_inject_missing_categorical_per_row_probability():
    values = np.array(["x"] * 10_000, dtype=object)
    probability = np.zeros(10_000)
    probability[:5_000] = 1.0
    result = syn.inject_missing_categorical(rng(), values, probability)
    assert all(value is None for value in result[:5_000])
    assert all(value == "x" for value in result[5_000:])


def test_inject_missing_categorical_encoded_matches_object_path():
    probability = np.full(10_000, 0.3)
    objects = np.array(["x"] * 10_000, dtype=object)
    encoded = syn.take_categories(np.zeros(10_000, dtype=np.int32), ["x"])
    object_result = syn.inject_missing_categorical(rng(), objects, probability)
    encoded_result = syn.inject_missing_categorical(rng(), encoded, probability)
    assert isinstance(encoded_result, CategoricalColumn)
    assert list(encoded_result.decode()) == list(object_result)
    # the input column is never mutated
    assert not encoded.missing_mask().any()


def test_flip_labels_rate():
    labels = np.zeros(20_000, dtype=int)
    flipped = syn.flip_labels(rng(), labels, 0.1)
    assert 0.08 < flipped.mean() < 0.12


def test_flip_labels_does_not_mutate_input():
    labels = np.zeros(100, dtype=int)
    syn.flip_labels(rng(), labels, 1.0)
    assert labels.sum() == 0


def test_sentinel_spike():
    values = syn.sentinel_spike(rng(), np.zeros(50_000), 99.0, 0.01)
    spike_share = np.mean(values == 99.0)
    assert 0.007 < spike_share < 0.013


def test_group_dependent_probability():
    in_group = np.array([True, False, True])
    probability = syn.group_dependent_probability(0.1, 3.0, in_group)
    assert list(probability) == [pytest.approx(0.3), pytest.approx(0.1),
                                 pytest.approx(0.3)]


def test_group_dependent_probability_clipped():
    probability = syn.group_dependent_probability(0.9, 3.0, np.array([True]))
    assert probability[0] == 1.0
