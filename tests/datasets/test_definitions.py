"""Tests for declarative dataset definitions."""

import pytest

from repro.datasets import DatasetDefinition, dataset_definition
from repro.fairness.groups import Comparison, GroupPredicate
from repro.tabular import Table


def tiny_generator(n_rows, seed):
    return Table.from_columns(
        {
            "x": [1.0] * n_rows,
            "sex": ["male"] * n_rows,
            "label": [1.0] * n_rows,
        }
    )


def make_definition(**overrides):
    defaults = dict(
        name="tiny",
        source_domain="test",
        generator=tiny_generator,
        default_n_rows=10,
        label="label",
        error_types=("missing_values",),
        drop_variables=("sex",),
        privileged_groups=(GroupPredicate("sex", Comparison.EQ, "male"),),
    )
    defaults.update(overrides)
    return DatasetDefinition(**defaults)


def test_generate_default_size():
    assert make_definition().generate().n_rows == 10


def test_generate_custom_size():
    assert make_definition().generate(n_rows=3).n_rows == 3


def test_generate_invalid_size():
    with pytest.raises(ValueError):
        make_definition().generate(n_rows=0)


def test_unknown_error_type_rejected():
    with pytest.raises(ValueError, match="error types"):
        make_definition(error_types=("typos",))


def test_unsupported_task_rejected():
    with pytest.raises(ValueError, match="ml_task"):
        make_definition(ml_task="regression")


def test_requires_privileged_group():
    with pytest.raises(ValueError, match="privileged"):
        make_definition(privileged_groups=())


def test_intersectional_pair_out_of_range():
    with pytest.raises(ValueError, match="out of range"):
        make_definition(intersectional_pairs=((0, 1),))


def test_group_specs_derived():
    definition = make_definition()
    assert definition.group_specs[0].attribute == "sex"
    assert definition.sensitive_attributes == ("sex",)


def test_feature_columns_hide_label_and_drops():
    definition = make_definition()
    table = definition.generate(n_rows=2)
    assert definition.feature_columns(table) == ("x",)


def test_validate_table_missing_label():
    definition = make_definition()
    bad = Table.from_columns({"x": [1.0], "sex": ["male"]})
    with pytest.raises(ValueError, match="label"):
        definition.validate_table(bad)


def test_validate_table_missing_sensitive_attribute():
    definition = make_definition()
    bad = Table.from_columns({"x": [1.0], "label": [1.0]})
    with pytest.raises(ValueError, match="sensitive"):
        definition.validate_table(bad)


def test_registry_unknown_name():
    with pytest.raises(KeyError, match="available"):
        dataset_definition("nope")
