"""Tests for the five synthetic dataset generators."""

import numpy as np
import pytest

from repro.cleaning import (
    ConfidentLearningDetector,
    IqrOutlierDetector,
    MissingValueDetector,
    MissingValueRepair,
)
from repro.datasets import DATASET_NAMES, dataset_definition, load_dataset
from repro.ml import LogisticRegressionClassifier, TabularFeaturizer
from repro.ml.metrics import accuracy_score

N = 2500


@pytest.fixture(scope="module")
def tables():
    return {name: load_dataset(name, n_rows=N, seed=7) for name in DATASET_NAMES}


def test_registry_contains_the_papers_five_datasets():
    assert set(DATASET_NAMES) == {"adult", "folk", "credit", "german", "heart"}


def test_table1_metadata():
    expectations = {
        "adult": ("census", 48_844, ("sex", "race")),
        "folk": ("census", 378_817, ("sex", "race")),
        "credit": ("finance", 150_000, ("age",)),
        "german": ("finance", 1_000, ("age", "sex")),
        "heart": ("healthcare", 70_000, ("sex", "age")),
    }
    for name, (domain, n_rows, sensitive) in expectations.items():
        definition = dataset_definition(name)
        assert definition.source_domain == domain
        assert definition.default_n_rows == n_rows
        assert definition.sensitive_attributes == sensitive


@pytest.mark.parametrize("name", ["adult", "folk", "credit", "german", "heart"])
def test_generated_size_and_schema(tables, name):
    definition, table = tables[name]
    assert table.n_rows == N
    definition.validate_table(table)


@pytest.mark.parametrize("name", ["adult", "folk", "credit", "german", "heart"])
def test_labels_are_binary(tables, name):
    definition, table = tables[name]
    labels = table.column(definition.label)
    assert set(np.unique(labels)) <= {0.0, 1.0}


@pytest.mark.parametrize("name", ["adult", "folk", "credit", "german", "heart"])
def test_positive_class_is_majority_or_substantial(tables, name):
    definition, table = tables[name]
    rate = table.column(definition.label).mean()
    assert 0.2 < rate < 0.95


@pytest.mark.parametrize("name", ["adult", "folk", "credit", "german", "heart"])
def test_deterministic_under_seed(name):
    a = load_dataset(name, n_rows=200, seed=3)[1]
    b = load_dataset(name, n_rows=200, seed=3)[1]
    assert a == b


@pytest.mark.parametrize("name", ["adult", "folk", "credit", "german", "heart"])
def test_different_seeds_differ(name):
    a = load_dataset(name, n_rows=200, seed=3)[1]
    b = load_dataset(name, n_rows=200, seed=4)[1]
    assert a != b


def test_heart_has_no_missing_values(tables):
    __, table = tables["heart"]
    assert not table.missing_mask().any()


@pytest.mark.parametrize("name", ["adult", "folk", "credit", "german"])
def test_other_datasets_have_missing_values(tables, name):
    __, table = tables[name]
    assert MissingValueDetector().detect(table).n_flagged > 0


def test_folk_structural_missingness_for_minors(tables):
    __, table = tables["folk"]
    minors = table.column("AGEP") < 18
    assert minors.any()
    occp_missing = table.is_missing("OCCP")
    assert occp_missing[minors].all()


def test_adult_missingness_skews_disadvantaged(tables):
    definition, table = tables["adult"]
    missing = table.missing_mask()
    race_spec = definition.group_specs[1]
    privileged_rate = missing[race_spec.privileged_mask(table)].mean()
    disadvantaged_rate = missing[race_spec.disadvantaged_mask(table)].mean()
    assert disadvantaged_rate > privileged_rate


def test_german_missingness_skews_privileged(tables):
    definition, table = tables["german"]
    missing = table.missing_mask()
    age_spec = definition.group_specs[0]
    privileged_rate = missing[age_spec.privileged_mask(table)].mean()
    disadvantaged_rate = missing[age_spec.disadvantaged_mask(table)].mean()
    assert privileged_rate > disadvantaged_rate


@pytest.mark.parametrize("name", ["adult", "credit", "heart"])
def test_datasets_contain_numeric_outliers(tables, name):
    __, table = tables[name]
    assert IqrOutlierDetector().detect(table).n_flagged > 0


def test_german_sex_derived_from_personal_status(tables):
    __, table = tables["german"]
    status = table.column("personal_status")
    sex = table.column("sex")
    for status_value, sex_value in zip(status, sex):
        assert status_value.startswith(sex_value)


def test_heart_blood_pressure_entry_errors_present(tables):
    __, table = tables["heart"]
    ap_hi = table.column("ap_hi")
    assert (ap_hi > 400).any() or (ap_hi < 0).any()


def test_credit_sentinel_codes_present():
    __, table = load_dataset("credit", n_rows=20_000, seed=1)
    past_due = table.column("past_due_30_59")
    assert (past_due > 90).any()


@pytest.mark.parametrize("name", ["adult", "folk", "credit", "german", "heart"])
def test_models_beat_base_rate(tables, name):
    definition, table = tables[name]
    clean = MissingValueRepair().fit_transform(table)
    X = TabularFeaturizer(
        feature_columns=definition.feature_columns(clean)
    ).fit_transform(clean)
    y = table.column(definition.label).astype(int)
    model = LogisticRegressionClassifier(C=1.0).fit(X, y)
    accuracy = accuracy_score(y, model.predict(X))
    base_rate = max(y.mean(), 1 - y.mean())
    assert accuracy > base_rate + 0.02


def test_label_noise_is_detectable(tables):
    definition, table = tables["german"]
    clean = MissingValueRepair().fit_transform(table)
    X = TabularFeaturizer(
        feature_columns=definition.feature_columns(clean)
    ).fit_transform(clean)
    y = table.column(definition.label).astype(int)
    result = ConfidentLearningDetector(random_state=0).detect(X, y)
    assert 0 < result.n_flagged < 0.3 * len(y)


def test_sensitive_attributes_are_dropped_from_features(tables):
    for name in DATASET_NAMES:
        definition, table = tables[name]
        features = definition.feature_columns(table)
        for sensitive in definition.sensitive_attributes:
            assert sensitive not in features
        assert definition.label not in features
