"""Tests for exact kNN-Shapley values."""

import numpy as np
import pytest

from repro.valuation import knn_shapley


def knn_utility(X_train, y_train, X_test, y_test, k):
    """Direct computation of the kNN utility (mean match fraction)."""
    total = 0.0
    for x, y in zip(X_test, y_test):
        distances = np.sum((X_train - x) ** 2, axis=1)
        order = np.argsort(distances, kind="mergesort")[: min(k, len(y_train))]
        total += np.mean(y_train[order] == y)
    return total / len(y_test)


def brute_force_shapley(X_train, y_train, x_test, y_test, k):
    """Exponential-time Shapley for tiny training sets."""
    import itertools

    n = len(y_train)
    values = np.zeros(n)

    def utility(subset):
        # Jia et al.'s kNN utility: matches among the min(K, |S|)
        # nearest neighbours, always divided by K
        if not subset:
            return 0.0
        subset = list(subset)
        distances = np.sum((X_train[subset] - x_test) ** 2, axis=1)
        order = np.argsort(distances, kind="mergesort")[: min(k, len(subset))]
        return float(np.sum(y_train[np.array(subset)[order]] == y_test)) / k

    import math

    for i in range(n):
        others = [j for j in range(n) if j != i]
        for size in range(n):
            for subset in itertools.combinations(others, size):
                weight = (
                    math.factorial(size) * math.factorial(n - size - 1)
                ) / math.factorial(n)
                values[i] += weight * (
                    utility(list(subset) + [i]) - utility(subset)
                )
    return values


def make_data(n_train=40, n_test=15, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0, 1, (n_train // 2, 2))
    X1 = rng.normal(3, 1, (n_train - n_train // 2, 2))
    X_train = np.vstack([X0, X1])
    y_train = np.array([0] * (n_train // 2) + [1] * (n_train - n_train // 2))
    X_test = np.vstack(
        [rng.normal(0, 1, (n_test // 2, 2)), rng.normal(3, 1, (n_test - n_test // 2, 2))]
    )
    y_test = np.array([0] * (n_test // 2) + [1] * (n_test - n_test // 2))
    return X_train, y_train, X_test, y_test


def test_efficiency_axiom_values_sum_to_utility():
    X_train, y_train, X_test, y_test = make_data()
    for k in (1, 3, 5):
        values = knn_shapley(X_train, y_train, X_test, y_test, k=k)
        assert values.sum() == pytest.approx(
            knn_utility(X_train, y_train, X_test, y_test, k)
        )


def test_matches_brute_force_on_tiny_instance():
    rng = np.random.default_rng(1)
    X_train = rng.normal(size=(6, 2))
    y_train = np.array([0, 1, 0, 1, 1, 0])
    x_test = rng.normal(size=2)
    y_test = 1
    exact = brute_force_shapley(X_train, y_train, x_test, y_test, k=3)
    fast = knn_shapley(
        X_train, y_train, x_test[None, :], np.array([y_test]), k=3
    )
    assert np.allclose(fast, exact, atol=1e-10)


def test_matches_brute_force_k1():
    rng = np.random.default_rng(2)
    X_train = rng.normal(size=(5, 2))
    y_train = np.array([1, 0, 1, 0, 1])
    x_test = rng.normal(size=2)
    exact = brute_force_shapley(X_train, y_train, x_test, 0, k=1)
    fast = knn_shapley(X_train, y_train, x_test[None, :], np.array([0]), k=1)
    assert np.allclose(fast, exact, atol=1e-10)


def test_mislabeled_points_get_lower_values():
    X_train, y_train, X_test, y_test = make_data(n_train=100, n_test=40)
    noisy = y_train.copy()
    flipped = [3, 17, 41, 77]
    for index in flipped:
        noisy[index] = 1 - noisy[index]
    values = knn_shapley(X_train, noisy, X_test, y_test, k=5)
    flipped_mean = values[flipped].mean()
    clean_mean = np.delete(values, flipped).mean()
    assert flipped_mean < clean_mean


def test_helpful_point_has_positive_value():
    # a training point identical to a test point with matching label
    X_train = np.array([[0.0, 0.0], [5.0, 5.0]])
    y_train = np.array([1, 0])
    X_test = np.array([[0.0, 0.0]])
    y_test = np.array([1])
    values = knn_shapley(X_train, y_train, X_test, y_test, k=1)
    assert values[0] > 0
    assert values.sum() == pytest.approx(1.0)


def test_shape_validation():
    with pytest.raises(ValueError, match="feature mismatch"):
        knn_shapley(np.zeros((3, 2)), np.zeros(3), np.zeros((2, 3)), np.zeros(2))
    with pytest.raises(ValueError, match="non-empty"):
        knn_shapley(np.zeros((0, 2)), np.zeros(0), np.zeros((2, 2)), np.zeros(2))
    with pytest.raises(ValueError, match="k must be"):
        knn_shapley(np.zeros((3, 2)), np.zeros(3), np.zeros((2, 2)), np.zeros(2), k=0)


def test_deterministic():
    X_train, y_train, X_test, y_test = make_data()
    a = knn_shapley(X_train, y_train, X_test, y_test)
    b = knn_shapley(X_train, y_train, X_test, y_test)
    assert np.array_equal(a, b)
