"""Tests for fairness-aware data valuation."""

import numpy as np
import pytest

from repro.valuation import FairnessShapleyValuator


def make_grouped_data(seed=0):
    """Separable data where some training tuples only help one group.

    The privileged group lives around (0, 0)/(3, 0); the disadvantaged
    group around (0, 10)/(3, 10). Training tuples in one region barely
    influence test tuples of the other.
    """
    rng = np.random.default_rng(seed)
    n_per = 30

    def blob(cx, cy, label):
        return rng.normal((cx, cy), 0.7, (n_per, 2)), np.full(n_per, label)

    Xp0, yp0 = blob(0, 0, 0)
    Xp1, yp1 = blob(3, 0, 1)
    Xd0, yd0 = blob(0, 10, 0)
    Xd1, yd1 = blob(3, 10, 1)
    X_train = np.vstack([Xp0, Xp1, Xd0, Xd1])
    y_train = np.concatenate([yp0, yp1, yd0, yd1]).astype(int)
    region = np.array(["priv"] * 2 * n_per + ["dis"] * 2 * n_per)

    Xt_p0, yt_p0 = blob(0, 0, 0)
    Xt_p1, yt_p1 = blob(3, 0, 1)
    Xt_d0, yt_d0 = blob(0, 10, 0)
    Xt_d1, yt_d1 = blob(3, 10, 1)
    X_test = np.vstack([Xt_p0, Xt_p1, Xt_d0, Xt_d1])
    y_test = np.concatenate([yt_p0, yt_p1, yt_d0, yt_d1]).astype(int)
    privileged = np.array([True] * 2 * n_per + [False] * 2 * n_per)
    return X_train, y_train, region, X_test, y_test, privileged


def test_region_tuples_valued_by_their_group():
    X_train, y_train, region, X_test, y_test, privileged = make_grouped_data()
    result = FairnessShapleyValuator(k=5).value(
        X_train, y_train, X_test, y_test, privileged, ~privileged
    )
    priv_rows = region == "priv"
    # tuples in the privileged region contribute to the privileged
    # utility and (almost) nothing to the disadvantaged one
    assert result.privileged_values[priv_rows].mean() > (
        result.privileged_values[~priv_rows].mean()
    )
    assert result.disadvantaged_values[~priv_rows].mean() > (
        result.disadvantaged_values[priv_rows].mean()
    )


def test_disparity_values_positive_for_privileged_helpers():
    X_train, y_train, region, X_test, y_test, privileged = make_grouped_data()
    result = FairnessShapleyValuator(k=5).value(
        X_train, y_train, X_test, y_test, privileged, ~privileged
    )
    priv_rows = region == "priv"
    assert result.disparity_values[priv_rows].mean() > 0
    assert result.disparity_values[~priv_rows].mean() < 0


def test_disparity_ranking_puts_privileged_helpers_first():
    X_train, y_train, region, X_test, y_test, privileged = make_grouped_data()
    result = FairnessShapleyValuator(k=5).value(
        X_train, y_train, X_test, y_test, privileged, ~privileged
    )
    top = result.disparity_ranking()[:10]
    assert (region[top] == "priv").mean() > 0.8


def test_harmful_for_fairness_mask_size():
    X_train, y_train, __, X_test, y_test, privileged = make_grouped_data()
    result = FairnessShapleyValuator(k=5).value(
        X_train, y_train, X_test, y_test, privileged, ~privileged
    )
    harmful = result.harmful_for_fairness(quantile=0.9)
    assert 0 < harmful.sum() <= 0.15 * len(y_train)


def test_harmful_for_accuracy_flags_mislabeled():
    X_train, y_train, __, X_test, y_test, privileged = make_grouped_data()
    noisy = y_train.copy()
    noisy[:5] = 1 - noisy[:5]
    result = FairnessShapleyValuator(k=5).value(
        X_train, noisy, X_test, y_test, privileged, ~privileged
    )
    harmful = result.harmful_for_accuracy()
    assert harmful[:5].mean() > 0.5


def test_widening_gap_orientation():
    X_train, y_train, region, X_test, y_test, privileged = make_grouped_data()
    result = FairnessShapleyValuator(k=5).value(
        X_train, y_train, X_test, y_test, privileged, ~privileged
    )
    toward_priv = result.widening_gap(current_disparity=+0.2, quantile=0.9)
    toward_dis = result.widening_gap(current_disparity=-0.2, quantile=0.9)
    priv_rows = region == "priv"
    # widening a privileged-favouring gap = tuples helping the
    # privileged group; the opposite sign flips the selection
    assert (priv_rows[toward_priv]).mean() > 0.8
    assert (priv_rows[toward_dis]).mean() < 0.2
    assert not (toward_priv & toward_dis).any()


def test_widening_gap_invalid_quantile():
    X_train, y_train, __, X_test, y_test, privileged = make_grouped_data()
    result = FairnessShapleyValuator(k=5).value(
        X_train, y_train, X_test, y_test, privileged, ~privileged
    )
    with pytest.raises(ValueError):
        result.widening_gap(0.1, quantile=0.0)


def test_recall_only_restricts_to_positives():
    X_train, y_train, __, X_test, y_test, privileged = make_grouped_data()
    full = FairnessShapleyValuator(k=5, recall_only=False).value(
        X_train, y_train, X_test, y_test, privileged, ~privileged
    )
    recall = FairnessShapleyValuator(k=5, recall_only=True).value(
        X_train, y_train, X_test, y_test, privileged, ~privileged
    )
    assert not np.allclose(full.privileged_values, recall.privileged_values)


def test_empty_group_rejected():
    X_train, y_train, __, X_test, y_test, privileged = make_grouped_data()
    with pytest.raises(ValueError, match="at least one"):
        FairnessShapleyValuator().value(
            X_train,
            y_train,
            X_test,
            y_test,
            np.zeros(len(y_test), dtype=bool),
            ~privileged,
        )


def test_mask_length_validated():
    X_train, y_train, __, X_test, y_test, privileged = make_grouped_data()
    with pytest.raises(ValueError, match="match the test set"):
        FairnessShapleyValuator().value(
            X_train, y_train, X_test, y_test, privileged[:-1], ~privileged
        )


def test_invalid_quantile():
    X_train, y_train, __, X_test, y_test, privileged = make_grouped_data()
    result = FairnessShapleyValuator().value(
        X_train, y_train, X_test, y_test, privileged, ~privileged
    )
    with pytest.raises(ValueError):
        result.harmful_for_fairness(quantile=1.0)


def test_invalid_k():
    with pytest.raises(ValueError):
        FairnessShapleyValuator(k=0)
