"""Golden-value regressions and hypothesis properties for valuation.

The golden test pins the exact closed-form output on one fixed
instance, so any numeric drift in a refactor of the Jia et al.
recursion is caught byte-for-byte. The properties state the axioms the
implementation is supposed to satisfy on *arbitrary* data: values sum
to the utility of the full training set (the efficiency axiom — the
leave-everything-out utility gap, since the empty set has utility 0),
and the fairness disparity values sum to the privileged-vs-
disadvantaged utility gap.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.valuation import FairnessShapleyValuator, knn_shapley

SETTINGS = settings(max_examples=40, deadline=None, derandomize=True)

GOLDEN_X_TRAIN = np.array(
    [
        [0.305, -1.04],
        [0.75, 0.941],
        [-1.951, -1.302],
        [0.128, -0.316],
        [-0.017, -0.853],
        [0.879, 0.778],
        [0.066, 1.127],
        [0.468, -0.859],
    ]
)
GOLDEN_Y_TRAIN = np.array([0, 1, 1, 0, 1, 0, 0, 1])
GOLDEN_X_TEST = np.array([[0.369, -0.959], [0.878, -0.05], [-0.185, -0.681]])
GOLDEN_Y_TEST = np.array([1, 0, 1])

#: knn_shapley(..., k=3) on the instance above, pinned 2026-08.
GOLDEN_VALUES = np.array(
    [
        9.25185853854297e-18,
        0.06666666666666667,
        0.08333333333333333,
        0.027777777777777773,
        0.15555555555555556,
        0.055555555555555546,
        0.02777777777777778,
        0.1388888888888889,
    ]
)


def knn_utility(X_train, y_train, X_test, y_test, k):
    """Naive oracle: mean fraction of matching labels among the k-NN.

    Only meaningful for ``n_train >= k`` — the regime the closed-form
    recursion is specified for (and the only one the study uses); the
    properties below stay inside it.
    """
    total = 0.0
    for x, y in zip(X_test, y_test):
        distances = np.sum((X_train - x) ** 2, axis=1)
        order = np.argsort(distances, kind="mergesort")[:k]
        total += np.mean(y_train[order] == y)
    return total / len(y_test)


def random_instance(seed, n_train, n_test):
    rng = np.random.default_rng(seed)
    X_train = rng.normal(size=(n_train, 2)).round(3)
    y_train = rng.integers(0, 2, n_train)
    X_test = rng.normal(size=(n_test, 2)).round(3)
    y_test = rng.integers(0, 2, n_test)
    return X_train, y_train, X_test, y_test


def test_golden_values_regression():
    values = knn_shapley(
        GOLDEN_X_TRAIN, GOLDEN_Y_TRAIN, GOLDEN_X_TEST, GOLDEN_Y_TEST, k=3
    )
    assert values.tolist() == GOLDEN_VALUES.tolist()


@SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_train=st.integers(min_value=8, max_value=30),
    n_test=st.integers(min_value=1, max_value=10),
    k=st.integers(min_value=1, max_value=7),
)
def test_efficiency_values_sum_to_full_utility(seed, n_train, n_test, k):
    X_train, y_train, X_test, y_test = random_instance(seed, n_train, n_test)
    values = knn_shapley(X_train, y_train, X_test, y_test, k=k)
    assert values.sum() == pytest.approx(
        knn_utility(X_train, y_train, X_test, y_test, k), abs=1e-9
    )


@SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    k=st.integers(min_value=1, max_value=5),
)
def test_disparity_values_sum_to_group_utility_gap(seed, k):
    X_train, y_train, X_test, y_test = random_instance(seed, n_train=20, n_test=10)
    privileged = np.arange(10) < 5
    result = FairnessShapleyValuator(k=k).value(
        X_train, y_train, X_test, y_test, privileged, ~privileged
    )
    gap = knn_utility(
        X_train, y_train, X_test[privileged], y_test[privileged], k
    ) - knn_utility(X_train, y_train, X_test[~privileged], y_test[~privileged], k)
    assert result.disparity_values.sum() == pytest.approx(gap, abs=1e-9)
    assert result.accuracy_values.sum() == pytest.approx(
        knn_utility(X_train, y_train, X_test, y_test, k), abs=1e-9
    )


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_duplicated_training_point_symmetry(seed):
    """Identical training tuples receive identical values (symmetry)."""
    rng = np.random.default_rng(seed)
    X_train = rng.normal(size=(6, 2)).round(3)
    X_train[3] = X_train[0]
    y_train = np.array([1, 0, 1, 1, 0, 1])
    X_test = rng.normal(size=(4, 2)).round(3)
    y_test = rng.integers(0, 2, 4)
    values = knn_shapley(X_train, y_train, X_test, y_test, k=3)
    assert values[0] == pytest.approx(values[3], abs=1e-12)
