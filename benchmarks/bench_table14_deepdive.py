"""Table XIV + the Section VI deep dive.

- Table XIV: per-model impact of auto-cleaning on fairness and
  accuracy over all single-attribute configurations.
- Case analysis: for how many (metric, dataset+attribute, error type)
  cases does a non-worsening / improving / win-win technique exist?
- Technique analysis: dummy-vs-mode imputation and per-detector
  worsening rates for outliers.
"""

from conftest import save_artifact

from repro import DeepDive, ImpactAnalysis
from repro.reporting import render_case_counts, render_model_table


def collect_single_attribute_impacts(store):
    analysis = ImpactAnalysis(store)
    impacts = []
    for error_type in ("missing_values", "outliers", "mislabels"):
        for metric in ("PP", "EO"):
            impacts.extend(
                analysis.configuration_impacts(
                    error_type, metric, intersectional=False
                )
            )
    return impacts


def build_report(store) -> str:
    impacts = collect_single_attribute_impacts(store)
    deepdive = DeepDive(impacts)
    sections = [
        render_model_table(
            deepdive.model_summaries(),
            "TABLE XIV: SINGLE-ATTRIBUTE ANALYSIS — IMPACT OF AUTO-CLEANING "
            f"ON ACCURACY AND\nFAIRNESS FOR DIFFERENT ML MODELS ON "
            f"{len(impacts)} CONFIGURATIONS IN TOTAL.",
        ),
        render_case_counts(
            deepdive.case_counts(),
            "SECTION VI: FOR WHICH CASES IS CLEANING POTENTIALLY BENEFICIAL?",
        ),
    ]
    dummy = deepdive.dummy_vs_mode_imputation()
    sections.append(
        "SECTION VI: CATEGORICAL IMPUTATION — fairness improvements\n"
        f"  dummy imputation:    {dummy['dummy']}\n"
        f"  mode imputation:     {dummy['other']}"
    )
    rates = deepdive.detection_worsening_rates()
    lines = ["SECTION VI: OUTLIER DETECTION — share of configurations worsening fairness"]
    for name in ("outliers_sd", "outliers_iqr", "outliers_if"):
        if name in rates:
            lines.append(f"  {name:<14} {100 * rates[name]:.1f}%")
    sections.append("\n".join(lines))
    return "\n\n".join(sections)


def test_table14_deepdive(benchmark, study_store):
    text = benchmark.pedantic(
        build_report, args=(study_store,), rounds=1, iterations=1
    )
    save_artifact("table14_deepdive.txt", text)
    assert "TABLE XIV" in text
    assert "log_reg" in text
