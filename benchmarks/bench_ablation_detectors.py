"""Ablation: outlier-detector flag volumes and overlap.

Section VI attributes the iqr rule's poor downstream fairness to the
high fraction of records it wrongly flags. This bench quantifies the
flag volumes and pairwise agreement of the three detectors on every
dataset.
"""

import numpy as np
from conftest import save_artifact

from repro.cleaning import (
    IqrOutlierDetector,
    IsolationForestOutlierDetector,
    SdOutlierDetector,
)


def build_report(disparity_tables) -> str:
    lines = [
        "ABLATION: OUTLIER DETECTOR FLAG VOLUMES AND AGREEMENT",
        "",
        f"{'dataset':<8} {'sd':>8} {'iqr':>8} {'if':>8}   "
        f"{'sd∩iqr':>8} {'sd∩if':>8} {'iqr∩if':>8}",
    ]
    for name, (definition, table) in disparity_tables.items():
        features = table.drop_columns([definition.label])
        masks = {
            "sd": SdOutlierDetector().detect(features).row_mask,
            "iqr": IqrOutlierDetector().detect(features).row_mask,
            "if": IsolationForestOutlierDetector(random_state=0)
            .detect(features)
            .row_mask,
        }
        def pct(mask):
            return f"{100 * np.mean(mask):.1f}%"

        lines.append(
            f"{name:<8} {pct(masks['sd']):>8} {pct(masks['iqr']):>8} "
            f"{pct(masks['if']):>8}   "
            f"{pct(masks['sd'] & masks['iqr']):>8} "
            f"{pct(masks['sd'] & masks['if']):>8} "
            f"{pct(masks['iqr'] & masks['if']):>8}"
        )
    lines.append("")
    lines.append(
        "(the iqr rule flags an order of magnitude more tuples than the"
        " sd rule,\n matching the paper's Figure 1 observation)"
    )
    return "\n".join(lines)


def test_ablation_detectors(benchmark, disparity_tables):
    text = benchmark.pedantic(
        build_report, args=(disparity_tables,), rounds=1, iterations=1
    )
    save_artifact("ablation_detectors.txt", text)
    assert "iqr" in text
