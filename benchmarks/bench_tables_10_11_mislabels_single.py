"""Tables X & XI: label-error cleaning, single-attribute groups."""

from _impact_bench import run_impact_bench


def test_tables_10_11_mislabels_single(benchmark, study_store):
    text = run_impact_bench(
        benchmark,
        study_store,
        "tables_10_11_mislabels_single.txt",
        [
            ("X", "mislabels", "PP", False),
            ("XI", "mislabels", "EO", False),
        ],
    )
    assert "TABLE X" in text and "TABLE XI" in text
