"""Figure 1: single-attribute disparity analysis (RQ1).

For every dataset, detector and single-attribute group definition,
report the flagged fractions per group and mark G²-significant
disparities — the reproduction of the paper's Figure 1.
"""

from conftest import save_artifact

from repro import DisparityAnalysis
from repro.reporting import render_disparity_figure


def build_figure(disparity_tables) -> str:
    analysis = DisparityAnalysis(alpha=0.05, random_state=0)
    findings = []
    for name, (definition, table) in disparity_tables.items():
        findings.extend(analysis.single_attribute(definition, table))
    return render_disparity_figure(
        findings,
        "FIG 1: SINGLE-ATTRIBUTE ANALYSIS — disparate proportions of tuples "
        "flagged\nby common error detection strategies "
        "(* = significant, G² test at p=.05)",
    )


def test_fig1_single_attribute(benchmark, disparity_tables):
    text = benchmark.pedantic(
        build_figure, args=(disparity_tables,), rounds=1, iterations=1
    )
    save_artifact("fig1_single_attribute.txt", text)
    assert "adult / sex" in text
    assert "missing_values" in text
