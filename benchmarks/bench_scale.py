"""Million-row data-plane benchmark: dictionary codes vs object arrays.

Measures, and writes to ``BENCH_scale.json`` at the repo root, the
three stages the encoded representation (PR 8) accelerates —

- **build**: generate the adult table (the encoded plane samples
  ``int32`` codes natively; the legacy baseline materialises every
  cell as a Python string and re-normalises it per cell, as the
  pre-encoding ``Table`` constructor did);
- **clean**: fit + apply mode imputation over the categorical columns
  (``bincount`` + ``np.where`` on codes vs the historical per-cell
  dict-count and fill loop);
- **featurize**: standard-scale + one-hot (scatter on codes vs the
  per-cell position-lookup loop)

— at 100k and 1M rows, with each (variant, size) point run in its own
subprocess so ``ru_maxrss`` gives an honest per-variant peak RSS. The
two variants verify against each other (equal repaired values, equal
feature matrices) before any timing is trusted, and the 100k point
asserts the PR's regression floor: the encoded plane must hold a ≥3x
throughput advantage on build+clean (and on the full
build+clean+featurize pipeline) and a lower peak RSS.

The legacy implementations below are faithful ports of the repo's
pre-encoding code paths (object-array ``Table`` normalisation, the
``repair.py`` per-cell fill loop, the per-cell ``OneHotEncoder``) —
kept in-bench so the comparison survives the old code's deletion.

Run with ``pytest benchmarks/bench_scale.py`` (or execute this file
directly with ``--worker`` for one point).
"""

from __future__ import annotations

import hashlib
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

ARTIFACT = Path(__file__).parent.parent / "BENCH_scale.json"
SRC = Path(__file__).parent.parent / "src"

DATASET = "adult"
SIZES = (100_000, 1_000_000)

#: Regression floor asserted at the smaller size.
MIN_BUILD_CLEAN_SPEEDUP = 3.0
ASSERT_AT = 100_000


# -- legacy (pre-encoding) object-array pipeline ----------------------


def _legacy_normalise(values) -> "np.ndarray":
    """Per-cell categorical normalisation of the old Table ctor."""
    import numpy as np

    arr = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        if value is None:
            arr[i] = None
        elif isinstance(value, float) and np.isnan(value):
            arr[i] = None
        else:
            arr[i] = str(value)
    return arr


def _legacy_mode(values) -> str:
    """Per-cell dict-count mode of the old ``_categorical_mode``."""
    counts: dict[str, int] = {}
    for value in values:
        if value is not None:
            counts[value] = counts.get(value, 0) + 1
    if not counts:
        return "__missing__"
    return max(sorted(counts), key=lambda key: counts[key])


def _legacy_fill(values, fill):
    """Per-cell missing-fill loop of the old ``repair._transform``."""
    values = values.copy()
    for i, value in enumerate(values):
        if value is None:
            values[i] = fill
    return values


def _legacy_one_hot(columns, categories_per_column):
    """Per-cell scatter of the old ``OneHotEncoder.transform``."""
    import numpy as np

    blocks = []
    for values, categories in zip(columns, categories_per_column):
        index = {category: i for i, category in enumerate(categories)}
        block = np.zeros((len(values), len(categories)), dtype=np.float64)
        for row, value in enumerate(values):
            position = index.get(value)
            if position is not None:
                block[row, position] = 1.0
        blocks.append(block)
    return np.hstack(blocks)


def _legacy_fit_categories(columns):
    """Old fit: sorted present values, None last when observed."""
    categories = []
    for values in columns:
        seen = set(values)
        categories.append(
            sorted(v for v in seen if v is not None)
            + ([None] if None in seen else [])
        )
    return categories


# -- the measured pipelines -------------------------------------------


def _run_point(variant: str, n_rows: int) -> dict:
    import numpy as np

    from repro.datasets import load_dataset
    from repro.ml.preprocessing import OneHotEncoder, StandardScaler

    timings: dict[str, float] = {}

    # build: generate + (legacy only) object materialisation and
    # per-cell re-normalisation, which is what the old generators plus
    # the old Table constructor did to every categorical cell
    start = time.perf_counter()
    __, table = load_dataset(DATASET, n_rows, seed=0)
    categorical_names = tuple(table.schema.categorical_names())
    numeric_names = tuple(table.schema.numeric_names())
    if variant == "legacy":
        raw = {name: _legacy_normalise(table.column(name)) for name in categorical_names}
    timings["build_s"] = time.perf_counter() - start

    # clean: mode imputation over the categorical columns
    start = time.perf_counter()
    if variant == "encoded":
        repaired = {}
        for name in categorical_names:
            column = table.categorical(name)
            mode = column.mode() or "__missing__"
            repaired[name] = (
                column.fill_missing(mode)
                if column.missing_mask().any()
                else column
            )
    else:
        repaired = {}
        for name in categorical_names:
            values = raw[name]
            repaired[name] = _legacy_fill(values, _legacy_mode(values))
    timings["clean_s"] = time.perf_counter() - start

    # featurize: standard-scale numerics (identical in both variants)
    # + one-hot the repaired categoricals
    start = time.perf_counter()
    numeric = np.column_stack([table.column(name) for name in numeric_names])
    numeric[np.isnan(numeric)] = 0.0
    scaled = StandardScaler().fit_transform(numeric)
    columns = [repaired[name] for name in categorical_names]
    if variant == "encoded":
        block = OneHotEncoder().fit(columns).transform(columns)
    else:
        block = _legacy_one_hot(columns, _legacy_fit_categories(columns))
    matrix = np.hstack([scaled, block])
    timings["featurize_s"] = time.perf_counter() - start

    # equivalence evidence, computed outside the timed stages
    digest = hashlib.sha256()
    digest.update(matrix.tobytes())
    for name in categorical_names:
        column = repaired[name]
        decoded = column.decode() if variant == "encoded" else column
        digest.update("\x00".join("" if v is None else v for v in decoded).encode())
    return {
        **timings,
        "total_s": sum(timings.values()),
        "rows_per_s_build_clean": n_rows / (timings["build_s"] + timings["clean_s"]),
        "rows_per_s_total": n_rows / sum(timings.values()),
        "matrix_shape": list(matrix.shape),
        "checksum": digest.hexdigest(),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _run_point_subprocess(variant: str, n_rows: int) -> dict:
    """One (variant, size) point in a fresh interpreter, so peak RSS
    reflects that variant alone."""
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}{env['PYTHONPATH']}" if env.get(
        "PYTHONPATH"
    ) else str(SRC)
    result = subprocess.run(
        [sys.executable, __file__, "--worker", variant, str(n_rows)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"worker {variant}@{n_rows} failed:\n{result.stderr}"
        )
    return json.loads(result.stdout)


def test_scale_encoded_vs_legacy():
    sizes: dict[str, dict] = {}
    for n_rows in SIZES:
        encoded = _run_point_subprocess("encoded", n_rows)
        legacy = _run_point_subprocess("legacy", n_rows)
        assert encoded["checksum"] == legacy["checksum"], (
            f"pipelines diverged at {n_rows} rows; timings are meaningless"
        )
        point = {
            "encoded": encoded,
            "legacy": legacy,
            "speedup_build_clean": (
                encoded["rows_per_s_build_clean"]
                / legacy["rows_per_s_build_clean"]
            ),
            "speedup_total": (
                encoded["rows_per_s_total"] / legacy["rows_per_s_total"]
            ),
            "peak_rss_ratio": (
                legacy["peak_rss_kb"] / max(1, encoded["peak_rss_kb"])
            ),
        }
        sizes[str(n_rows)] = point
        if n_rows == ASSERT_AT:
            assert point["speedup_build_clean"] >= MIN_BUILD_CLEAN_SPEEDUP, (
                f"encoded build+clean must hold a >={MIN_BUILD_CLEAN_SPEEDUP}x "
                f"throughput edge at {n_rows} rows, "
                f"got {point['speedup_build_clean']:.2f}x"
            )
            assert point["speedup_total"] >= MIN_BUILD_CLEAN_SPEEDUP, (
                f"encoded build+clean+featurize must hold a "
                f">={MIN_BUILD_CLEAN_SPEEDUP}x edge at {n_rows} rows, "
                f"got {point['speedup_total']:.2f}x"
            )
            assert encoded["peak_rss_kb"] < legacy["peak_rss_kb"], (
                "encoded plane must peak below the object-array baseline: "
                f"{encoded['peak_rss_kb']} vs {legacy['peak_rss_kb']} KiB"
            )
    ARTIFACT.write_text(
        json.dumps(
            {
                "dataset": DATASET,
                "cpu_count": os.cpu_count(),
                "stages": ["build", "clean", "featurize"],
                "sizes": sizes,
            },
            indent=2,
        )
        + "\n"
    )


if __name__ == "__main__":
    if len(sys.argv) == 4 and sys.argv[1] == "--worker":
        print(json.dumps(_run_point(sys.argv[2], int(sys.argv[3]))))
    else:
        sys.exit("usage: bench_scale.py --worker {encoded|legacy} <n_rows>")
