"""Tables XII & XIII: label-error cleaning, intersectional groups."""

from _impact_bench import run_impact_bench


def test_tables_12_13_mislabels_intersectional(benchmark, study_store):
    text = run_impact_bench(
        benchmark,
        study_store,
        "tables_12_13_mislabels_intersectional.txt",
        [
            ("XII", "mislabels", "PP", True),
            ("XIII", "mislabels", "EO", True),
        ],
    )
    assert "TABLE XII" in text and "TABLE XIII" in text
