"""Ablation: impact classification with vs without Bonferroni correction.

The paper follows CleanML in adjusting the t-test threshold for
multiple hypotheses. This ablation re-classifies every missing-value
configuration without the correction to show how many "significant"
impacts the adjustment suppresses.
"""

from conftest import save_artifact

from repro import ImpactAnalysis
from repro.benchmark import impact as impact_module
from repro.stats.impact import Impact


def build_report(store) -> str:
    analysis = ImpactAnalysis(store)

    def classify(n_hypotheses_override):
        original = dict(impact_module.HYPOTHESES_PER_ERROR_TYPE)
        impact_module.HYPOTHESES_PER_ERROR_TYPE = {
            key: n_hypotheses_override or value for key, value in original.items()
        }
        try:
            return analysis.configuration_impacts(
                "missing_values", "PP", intersectional=False
            )
        finally:
            impact_module.HYPOTHESES_PER_ERROR_TYPE = original

    adjusted = classify(None)
    unadjusted = classify(1)

    def significant(impacts):
        return sum(
            1
            for impact in impacts
            if impact.fairness_impact is not Impact.INSIGNIFICANT
            or impact.accuracy_impact is not Impact.INSIGNIFICANT
        )

    lines = [
        "ABLATION: BONFERRONI CORRECTION (missing values, PP, single-attribute)",
        f"  configurations:                        {len(adjusted)}",
        f"  significant with correction (alpha/6): {significant(adjusted)}",
        f"  significant without correction:        {significant(unadjusted)}",
        "  (the correction suppresses borderline effects, trading recall of",
        "   true impacts for protection against false discoveries)",
    ]
    return "\n".join(lines)


def test_ablation_bonferroni(benchmark, study_store):
    text = benchmark.pedantic(build_report, args=(study_store,), rounds=1, iterations=1)
    save_artifact("ablation_bonferroni.txt", text)
    assert "BONFERRONI" in text
