"""Shared fixtures for the paper-artifact benchmarks.

The RQ2 benches read a shared, resumable result store
(``benchmarks/_results/study.json``). If the store is missing runs for
an error type, the fixture populates them on first use (this is the
expensive part — roughly an hour of serial laptop compute for the
full study — and happens only once thanks to the store's resume
capability). Set ``REPRO_BENCH_WORKERS=N`` to shard the population
across N worker processes (the sharded executor journals completed
records to JSONL shards, so even a killed populate run resumes, and
the resulting store is byte-identical to a serial one). Rendered
tables are also written to ``benchmarks/_results/*.txt``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro import ExperimentRunner, StudyConfig
from repro.benchmark import ResultStore, run_parallel_study
from repro.datasets import DATASET_NAMES, dataset_definition

RESULTS_DIR = Path(__file__).parent / "_results"
STORE_PATH = RESULTS_DIR / "study.json"

#: Worker processes used to populate the store (1 = serial in-process).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Same scales as benchmarks/_run_study.py (kept in sync manually so
#: the bench suite can both consume a pre-built store and build one).
STUDY_CONFIGS = {
    "missing_values": StudyConfig(n_sample=3_000, test_fraction=0.4, n_repetitions=12),
    "mislabels": StudyConfig(n_sample=3_000, test_fraction=0.4, n_repetitions=12),
    "outliers": StudyConfig(n_sample=3_000, test_fraction=0.4, n_repetitions=8),
}

#: Dataset sizes used for the RQ1 disparity figures.
DISPARITY_SIZES = {
    "adult": 6_000,
    "folk": 8_000,
    "credit": 8_000,
    "german": 1_000,
    "heart": 8_000,
}


def ensure_error_type(
    store: ResultStore, error_type: str, workers: int = BENCH_WORKERS
) -> None:
    """Populate any missing runs for one error type (resumable)."""
    if workers > 1:
        run_parallel_study(
            STUDY_CONFIGS[error_type],
            store,
            workers=workers,
            error_types=(error_type,),
        )
        return
    runner = ExperimentRunner(STUDY_CONFIGS[error_type], store)
    for dataset in DATASET_NAMES:
        added = runner.run_dataset_error(dataset, error_type)
        if added:
            store.save()


def map_parallel(fn, items, workers: int = BENCH_WORKERS) -> list:
    """Map a picklable function over ``items``, order preserved.

    Runs in-process when ``REPRO_BENCH_WORKERS`` (or ``workers``) is 1;
    otherwise shards across a process pool. Used by benches whose work
    items are independent (e.g. the per-model identity sweeps of
    ``bench_model_selection.py``).
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


@pytest.fixture(scope="session")
def study_store() -> ResultStore:
    """The shared result store, populated for all three error types."""
    RESULTS_DIR.mkdir(exist_ok=True)
    store = ResultStore(STORE_PATH)
    for error_type in ("missing_values", "outliers", "mislabels"):
        ensure_error_type(store, error_type)
    return store


@pytest.fixture(scope="session")
def disparity_tables():
    """Generated tables for the RQ1 analysis, keyed by dataset name."""
    return {
        name: (
            dataset_definition(name),
            dataset_definition(name).generate(
                n_rows=DISPARITY_SIZES[name], seed=0
            ),
        )
        for name in DATASET_NAMES
    }


def save_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure alongside the result store."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print(text)
