"""Table I: the study's datasets (name, source, size, sensitive attrs)."""

from conftest import save_artifact

from repro.datasets import DATASET_NAMES, dataset_definition
from repro.reporting import render_dataset_table


def build_table() -> str:
    rows = []
    for name in DATASET_NAMES:
        definition = dataset_definition(name)
        rows.append(
            {
                "name": definition.name,
                "source": definition.source_domain,
                "n_tuples": definition.default_n_rows,
                "sensitive_attributes": definition.sensitive_attributes,
            }
        )
    return render_dataset_table(rows, "TABLE I: DATASETS FOR OUR EXPERIMENTAL STUDY")


def test_table1_datasets(benchmark):
    text = benchmark(build_table)
    save_artifact("table1_datasets.txt", text)
    assert "german" in text and "healthcare" in text
