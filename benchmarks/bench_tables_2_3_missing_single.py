"""Tables II & III: missing-value cleaning, single-attribute groups."""

from _impact_bench import run_impact_bench


def test_tables_2_3_missing_single(benchmark, study_store):
    text = run_impact_bench(
        benchmark,
        study_store,
        "tables_2_3_missing_single.txt",
        [
            ("II", "missing_values", "PP", False),
            ("III", "missing_values", "EO", False),
        ],
    )
    assert "TABLE II" in text and "TABLE III" in text
