"""Cold-vs-incremental cell throughput, per model and error type.

For every (model, error type) pair, runs the same small german study
slice twice through the serial executor — once with
``StudyConfig.incremental`` off (every cell is a cold refit) and once
with the reuse scope on — and appends to ``BENCH_incremental.json``
at the repo root:

- cells (records) per second for both runs and their speedup,
- the reuse-hit/miss counters and ``cells_warm_started`` from the
  warm run's trace (the same numbers ``obs-report`` renders),
- a byte-identity check: the warm store must match the cold store's
  manifest and shards bit for bit (the incremental contract).

The headline assertion: at least one model must clear a 1.5x cell
throughput gain on a repaired slice. The biggest winner is
``missing_values`` — imputation variants whose numeric columns have
no missing cells repair to byte-identical tables, so whole tuned
evaluations are served from the content-addressed memo.

Run with ``pytest benchmarks/bench_incremental.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import StudyConfig
from repro.benchmark import ExecutorOptions, ResultStore, run_parallel_study
from repro.testing.fixtures import store_fingerprint

ARTIFACT = Path(__file__).parent.parent / "BENCH_incremental.json"

MODELS = ("log_reg", "knn", "xgboost")
ERROR_TYPES = ("missing_values", "outliers", "mislabels")

N_SAMPLE = 300
N_REPETITIONS = 1
DATASET_SIZES = {"german": 600}


def _config(model: str, incremental: bool) -> StudyConfig:
    return StudyConfig(
        n_sample=N_SAMPLE,
        n_repetitions=N_REPETITIONS,
        models=(model,),
        dataset_sizes=dict(DATASET_SIZES),
        incremental=incremental,
    )


def _run_slice(directory: Path, model: str, error_type: str, incremental: bool):
    """One serial study slice; returns (store, records, wall seconds)."""
    directory.mkdir(parents=True, exist_ok=True)
    store = ResultStore(directory / "study.json")
    options = ExecutorOptions(backend="serial", trace=incremental)
    start = time.perf_counter()
    added = run_parallel_study(
        _config(model, incremental),
        store,
        workers=1,
        datasets=("german",),
        error_types=(error_type,),
        options=options,
    )
    return store, added, time.perf_counter() - start


def test_incremental_cell_throughput(tmp_path):
    results: dict[str, dict] = {}
    best_speedup = 0.0
    run_index = 0
    for model in MODELS:
        per_error: dict[str, dict] = {}
        for error_type in ERROR_TYPES:
            cold_dir = tmp_path / f"run{run_index}-cold"
            warm_dir = tmp_path / f"run{run_index}-warm"
            run_index += 1
            cold_store, cold_added, cold_s = _run_slice(
                cold_dir, model, error_type, incremental=False
            )
            warm_store, warm_added, warm_s = _run_slice(
                warm_dir, model, error_type, incremental=True
            )
            assert cold_added == warm_added > 0
            assert store_fingerprint(cold_dir / "study.json") == store_fingerprint(
                warm_dir / "study.json"
            ), f"{model}/{error_type}: incremental store diverged from cold"
            health = warm_store.health()
            speedup = cold_s / warm_s
            best_speedup = max(best_speedup, speedup)
            per_error[error_type] = {
                "cells": cold_added,
                "cold_s": cold_s,
                "warm_s": warm_s,
                "cold_cells_per_s": cold_added / cold_s,
                "warm_cells_per_s": warm_added / warm_s,
                "speedup": speedup,
                "cells_warm_started": health.cells_warm_started,
                "reuse": health.reuse,
            }
        results[model] = per_error
    payload = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    payload.update(
        {
            "cpu_count": os.cpu_count(),
            "config": {
                "dataset": "german",
                "n_sample": N_SAMPLE,
                "n_repetitions": N_REPETITIONS,
                "error_types": list(ERROR_TYPES),
            },
            "models": results,
            "best_speedup": best_speedup,
        }
    )
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    assert best_speedup >= 1.5, (
        f"expected >=1.5x cell throughput for at least one model on a "
        f"repaired slice, best was {best_speedup:.2f}x"
    )
