"""Grid-search kernel benchmarks: naive loop vs shared ``score_grid``.

Times :class:`GridSearchCV` with the fast path off and on for each of
the study's three model families, on grids wide enough to exercise the
sharing (one neighbour ranking for the whole ``n_neighbors`` grid, one
boosting run for the whole ``n_estimators`` grid, one warm-started
coefficient path for the ``C`` grid). Every timed pair is also checked
for byte-identical selection, and an identity sweep over the study
registry grids runs across ``REPRO_BENCH_WORKERS`` processes.

Speedups are appended to ``BENCH_models.json`` at the repo root for the
perf trajectory. The kNN and booster grids are the acceptance bar
(>= 2x); logistic's warm start is a smaller, solver-bound win and is
recorded without a floor.

Run with ``pytest benchmarks/bench_model_selection.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import map_parallel
from repro.benchmark.models import MODEL_NAMES, model_search
from repro.ml import (
    GradientBoostedTreesClassifier,
    GridSearchCV,
    KNearestNeighborsClassifier,
    LogisticRegressionClassifier,
)

ARTIFACT = Path(__file__).parent.parent / "BENCH_models.json"

#: The timed tuning workloads. Grid widths mirror realistic sweeps —
#: wider than the paper's study grids, which share too little for the
#: booster (its ``max_depth`` grid has no common prefix to reuse).
BENCH_GRIDS = {
    "log_reg": (
        LogisticRegressionClassifier(),
        {"C": [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0]},
    ),
    "knn": (
        KNearestNeighborsClassifier(),
        {"n_neighbors": [1, 3, 5, 9, 15, 21, 31]},
    ),
    "xgboost": (
        GradientBoostedTreesClassifier(max_depth=3),
        {"n_estimators": [5, 10, 20, 30, 40]},
    ),
}

#: Tuning speedup floor per model (None = record only).
SPEEDUP_FLOOR = {"log_reg": None, "knn": 2.0, "xgboost": 2.0}

N_ROWS = 2_400
N_FEATURES = 12
TIMING_ROUNDS = 3


def _bench_data(n: int = N_ROWS, d: int = N_FEATURES, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = ((X @ w + rng.normal(scale=1.5, size=n)) > 0).astype(int)
    return X, y


def _merge_artifact(update: dict) -> None:
    payload = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    payload.update(update)
    payload["cpu_count"] = os.cpu_count()
    payload["config"] = {
        "n_rows": N_ROWS,
        "n_features": N_FEATURES,
        "n_splits": 3,
        "timing_rounds": TIMING_ROUNDS,
        "grids": {
            name: grid for name, (__, grid) in BENCH_GRIDS.items()
        },
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def _time_search(estimator, grid, X, y, use_fast_path: bool):
    """Best-of-rounds wall clock plus the last fitted search."""
    best = float("inf")
    search = None
    for __ in range(TIMING_ROUNDS):
        search = GridSearchCV(
            estimator, grid, n_splits=3, random_state=0,
            use_fast_path=use_fast_path,
        )
        start = time.perf_counter()
        search.fit(X, y)
        best = min(best, time.perf_counter() - start)
    return best, search


def _registry_identity(name: str) -> dict:
    """Worker for the parallel sweep: both paths on the study grid."""
    rng = np.random.default_rng(17)
    X = rng.normal(size=(600, 10))
    w = rng.normal(size=10)
    y = ((X @ w + rng.normal(scale=1.5, size=600)) > 0).astype(int)
    naive = model_search(name, tuning_seed=5, fast_path=False).fit(X, y)
    fast = model_search(name, tuning_seed=5, fast_path=True).fit(X, y)
    return {
        "model": name,
        "identical": (
            naive.best_params_ == fast.best_params_
            and [e["score"] for e in naive.cv_results_]
            == [e["score"] for e in fast.cv_results_]
        ),
        "best_params": fast.best_params_,
    }


def test_registry_identity_sweep():
    """Study-registry grids select identically on both paths (sharded
    across ``REPRO_BENCH_WORKERS`` processes)."""
    results = map_parallel(_registry_identity, MODEL_NAMES)
    assert all(entry["identical"] for entry in results), results
    _merge_artifact({"registry_identity": results})


def test_grid_search_kernel_speedups():
    """Naive vs fast tuning wall clock for all three model families."""
    X, y = _bench_data()
    summary = {}
    for name, (estimator, grid) in BENCH_GRIDS.items():
        naive_s, naive = _time_search(estimator, grid, X, y, use_fast_path=False)
        fast_s, fast = _time_search(estimator, grid, X, y, use_fast_path=True)
        assert naive.best_params_ == fast.best_params_
        assert [e["score"] for e in naive.cv_results_] == [
            e["score"] for e in fast.cv_results_
        ]
        summary[name] = {
            "n_candidates": len(naive.cv_results_),
            "naive_s": naive_s,
            "fast_s": fast_s,
            "speedup": naive_s / fast_s,
        }
    _merge_artifact({"tuning": summary})
    for name, floor in SPEEDUP_FLOOR.items():
        if floor is not None:
            assert summary[name]["speedup"] >= floor, (name, summary[name])
