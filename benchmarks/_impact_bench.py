"""Shared builder for the RQ2 impact-table benches (Tables II-XIII)."""

from __future__ import annotations

from conftest import save_artifact

from repro import ImpactAnalysis
from repro.reporting import render_impact_matrix

_METRIC_TITLES = {"PP": "PREDICTIVE PARITY", "EO": "EQUAL OPPORTUNITY"}
_ERROR_TITLES = {
    "missing_values": "MISSING VALUES",
    "outliers": "OUTLIERS",
    "mislabels": "LABEL ERRORS",
}
_GROUP_TITLES = {False: "SINGLE-ATTRIBUTE", True: "INTERSECTIONAL"}


def build_impact_table(
    store, table_number: str, error_type: str, metric: str, intersectional: bool
) -> str:
    """Render one of Tables II-XIII from the shared store."""
    analysis = ImpactAnalysis(store)
    matrix = analysis.matrix(error_type, metric, intersectional=intersectional)
    title = (
        f"TABLE {table_number}: IMPACT OF AUTO-CLEANING "
        f"{_ERROR_TITLES[error_type]} FOR {_GROUP_TITLES[intersectional]} "
        f"GROUPS,\nWITH {_METRIC_TITLES[metric]} AS FAIRNESS METRIC."
    )
    return render_impact_matrix(matrix, title)


def run_impact_bench(
    benchmark,
    store,
    artifact: str,
    pairs: list[tuple[str, str, str, bool]],
) -> str:
    """Benchmark and persist a group of impact tables.

    ``pairs`` holds (table_number, error_type, metric, intersectional).
    """

    def build() -> str:
        return "\n\n".join(
            build_impact_table(store, number, error_type, metric, intersectional)
            for number, error_type, metric, intersectional in pairs
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    save_artifact(artifact, text)
    return text
