"""Extension bench: fairness-aware cleaning-method selection (§VII).

The paper's vision section argues that, because most cases admit at
least one non-worsening technique, a principled selection methodology
can mitigate the damage of automated cleaning. This bench evaluates
the FairnessAwareSelector: across all cases, how often does picking
the fairness-first configuration avoid worsening fairness, compared to
the worst-case (adversarial) pick and a fixed default
(impute_mean_dummy / iqr+mean / flip_labels)?
"""

from conftest import save_artifact

from repro import FairnessAwareSelector, ImpactAnalysis
from repro.stats.impact import Impact

_DEFAULTS = {
    "missing_values": "impute_mean_dummy",
    "outliers": "repair_outliers_mean",
    "mislabels": "flip_labels",
}


def collect_impacts(store):
    analysis = ImpactAnalysis(store)
    impacts = []
    for error_type in ("missing_values", "outliers", "mislabels"):
        for metric in ("PP", "EO"):
            impacts.extend(
                analysis.configuration_impacts(error_type, metric, intersectional=False)
            )
    return impacts


def build_report(store) -> str:
    impacts = collect_impacts(store)
    selector = FairnessAwareSelector(impacts)
    recommendations = selector.recommend_all()

    cases = {
        (i.dataset, i.group_key, i.metric_name, i.error_type) for i in impacts
    }
    worst_safe = 0
    default_safe = 0
    for dataset, group_key, metric_name, error_type in cases:
        members = [
            i
            for i in impacts
            if (i.dataset, i.group_key, i.metric_name, i.error_type)
            == (dataset, group_key, metric_name, error_type)
        ]
        if all(m.fairness_impact is not Impact.WORSE for m in members):
            worst_safe += 1
        defaults = [m for m in members if m.repair == _DEFAULTS[error_type]]
        if defaults and all(
            m.fairness_impact is not Impact.WORSE for m in defaults
        ):
            default_safe += 1

    lines = [
        "EXTENSION: FAIRNESS-AWARE CLEANING-METHOD SELECTION (paper §VII)",
        f"  cases:                                 {len(cases)}",
        f"  fairness-aware selector avoids harm:   "
        f"{sum(r.safe for r in recommendations)} / {len(recommendations)} "
        f"({100 * selector.safety_rate():.1f}%)",
        f"  fixed default repair avoids harm:      {default_safe} / {len(cases)}",
        f"  worst-case (any pick) avoids harm:     {worst_safe} / {len(cases)}",
    ]
    return "\n".join(lines)


def test_ablation_selection(benchmark, study_store):
    text = benchmark.pedantic(build_report, args=(study_store,), rounds=1, iterations=1)
    save_artifact("ablation_selection.txt", text)
    assert "FAIRNESS-AWARE" in text
