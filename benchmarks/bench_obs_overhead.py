"""Tracing-overhead benchmark: the observability tax must stay small.

Runs the same small serial study (german / mislabels at smoke scale)
with tracing off and on — the traced arm now includes the runner's
per-cell heartbeat events *and* the per-record ``fairness`` events
(confusion-count reconstruction + disparity metrics per group) — in-
memory store either way, and records the wall-clock overhead fraction
in ``BENCH_obs.json`` at the repo root. The design target is < 3% overhead; the check is a *soft* one (a
``UserWarning``, not a failure) because a noisy shared box can swing a
sub-second study by more than that, and the artifact's trajectory
across commits is the real signal. Set ``REPRO_OBS_OVERHEAD_ENFORCE=1``
(the CI smoke gate does) to turn the warning into a hard failure.

The post-processing surfaces are timed too: Chrome-trace export and
cross-run diff of the traced study's sidecar, recorded as absolute
seconds in the artifact so a super-linear regression in either shows
up in its trajectory.

Also pins the truly hard part of the contract: with tracing disabled,
span entry costs one attribute lookup — measured here per no-op span
so a regression that starts allocating on the disabled path shows up
immediately.

Run with ``pytest benchmarks/bench_obs_overhead.py --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

from repro import ExperimentRunner, StudyConfig, obs
from repro.benchmark import ResultStore
from repro.datasets import load_dataset

ARTIFACT = Path(__file__).parent.parent / "BENCH_obs.json"

#: Soft overhead budget for traced vs untraced study wall clock.
OVERHEAD_TARGET = 0.03

OVERHEAD_CONFIG = StudyConfig(
    n_sample=300,
    n_repetitions=2,
    models=("log_reg",),
    dataset_sizes={"german": 600},
)


def _merge_artifact(update: dict) -> None:
    payload = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    payload.update(update)
    payload["cpu_count"] = os.cpu_count()
    payload["overhead_target"] = OVERHEAD_TARGET
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def _run_study(trace_path) -> float:
    """One serial smoke study; returns wall seconds."""
    seconds, _store = _run_study_with_store(trace_path)
    return seconds


def _run_study_with_store(trace_path) -> tuple[float, ResultStore]:
    definition, table = load_dataset("german", n_rows=600, seed=0)
    store = ResultStore()
    runner = ExperimentRunner(OVERHEAD_CONFIG, store)
    started = time.perf_counter()
    if trace_path is not None:
        with obs.scoped(trace_path):
            for repetition in range(OVERHEAD_CONFIG.n_repetitions):
                runner.run_repetition_cells(
                    definition, table, "mislabels", repetition, [("log_reg", 0)]
                )
    else:
        for repetition in range(OVERHEAD_CONFIG.n_repetitions):
            runner.run_repetition_cells(
                definition, table, "mislabels", repetition, [("log_reg", 0)]
            )
    seconds = time.perf_counter() - started
    assert len(store) == OVERHEAD_CONFIG.n_repetitions
    return seconds, store


def test_tracing_overhead(tmp_path):
    """Traced vs untraced study wall clock (best-of-3 each, interleaved
    so machine drift hits both arms equally)."""
    _run_study(None)  # warm the dataset and featurizer code paths
    untraced: list[float] = []
    traced: list[float] = []
    for round_index in range(3):
        untraced.append(_run_study(None))
        traced.append(_run_study(tmp_path / f"bench-{round_index}.trace.jsonl"))
    overhead = min(traced) / min(untraced) - 1.0
    within = overhead < OVERHEAD_TARGET
    message = (
        f"tracing overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_TARGET:.0%} target (noisy box or a regression?)"
    )
    _merge_artifact(
        {
            "study_overhead": {
                "untraced_s": min(untraced),
                "traced_s": min(traced),
                "overhead_fraction": overhead,
                "within_target": within,
            }
        }
    )
    if not within:
        if os.environ.get("REPRO_OBS_OVERHEAD_ENFORCE"):
            raise AssertionError(message)
        warnings.warn(message, stacklevel=1)


def test_export_and_diff_timings(tmp_path):
    """Time the telemetry post-processing surfaces over a real trace.

    Both read the same sidecar a traced study writes; export also pays
    JSON re-serialisation, diff pays two health folds. Absolute
    seconds are recorded (not a ratio — there is no untraced arm to
    compare against) so their trajectory across commits is the gate.
    """
    from repro.obs import diff_stores, export_trace

    trace_path = tmp_path / "bench.trace.jsonl"
    _run_study(trace_path)
    n_bytes = trace_path.stat().st_size

    started = time.perf_counter()
    n_events = export_trace([trace_path], tmp_path / "bench.chrome.json")
    export_seconds = time.perf_counter() - started
    assert n_events > 0

    started = time.perf_counter()
    diff = diff_stores([trace_path], [trace_path])
    diff_seconds = time.perf_counter() - started
    assert diff.entries and not diff.flagged  # self-diff is quiet

    _merge_artifact(
        {
            "postprocessing": {
                "trace_bytes": n_bytes,
                "export_events": n_events,
                "export_s": export_seconds,
                "diff_quantities": len(diff.entries),
                "diff_s": diff_seconds,
            }
        }
    )


def test_fairness_audit_timing(tmp_path):
    """Time the fairness surfaces the observatory added.

    The traced arm of the overhead gate already pays for per-record
    ``fairness`` event emission; this pins the post-hoc side — folding
    a store into a :class:`FairnessAudit` and self-diffing it (the
    obs-audit hot path) — as absolute seconds in the artifact, plus
    the emitted event count as a schema canary.
    """
    from repro.obs import build_audit, diff_audits

    trace_path = tmp_path / "bench.trace.jsonl"
    _seconds, store = _run_study_with_store(trace_path)

    fairness_events = sum(
        1
        for event in obs.read_trace_events([trace_path])
        if event.get("name") == "fairness"
    )
    assert fairness_events == len(store)  # one per record, always

    started = time.perf_counter()
    audit = build_audit(store)
    audit_seconds = time.perf_counter() - started
    assert audit.n_records == len(store)

    started = time.perf_counter()
    diff = diff_audits(audit, audit)
    diff_seconds = time.perf_counter() - started
    assert diff.regressions == []  # self-diff is always clean

    _merge_artifact(
        {
            "fairness": {
                "events_per_record": 1,
                "trace_events": fairness_events,
                "audit_s": audit_seconds,
                "self_diff_s": diff_seconds,
            }
        }
    )


def test_disabled_span_fast_path(benchmark):
    """A disabled span must stay at no-op cost (no sink, no clock)."""
    assert not obs.is_enabled()

    def spin() -> int:
        total = 0
        for _ in range(1000):
            with obs.span("cell", model="log_reg"):
                total += 1
        return total

    assert benchmark(spin) == 1000
    per_span_ns = benchmark.stats.stats.mean / 1000 * 1e9
    _merge_artifact({"disabled_span_ns": per_span_ns})
