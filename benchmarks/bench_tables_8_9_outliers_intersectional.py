"""Tables VIII & IX: outlier cleaning, intersectional groups."""

from _impact_bench import run_impact_bench


def test_tables_8_9_outliers_intersectional(benchmark, study_store):
    text = run_impact_bench(
        benchmark,
        study_store,
        "tables_8_9_outliers_intersectional.txt",
        [
            ("VIII", "outliers", "PP", True),
            ("IX", "outliers", "EO", True),
        ],
    )
    assert "TABLE VIII" in text and "TABLE IX" in text
