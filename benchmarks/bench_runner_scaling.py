"""Runner scaling benchmarks: single-cell latency and 1-vs-N workers.

Measures (a) the latency of one repetition cell — the work unit the
parallel scheduler ships to worker processes — and (b) the wall clock
of a small full study (german, all three error types) executed
serially versus on the sharded worker pool. Results are appended to
``BENCH_runner.json`` at the repo root for the perf trajectory,
alongside the core count of the measuring machine (speedup tracks the
hardware: expect ≥2× only with ≥4 physical cores; on a single-core
box the pool's process overhead makes the parallel path *slower*).

Run with ``pytest benchmarks/bench_runner_scaling.py --benchmark-only``.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path

from repro import ExperimentRunner, StudyConfig
from repro.benchmark import ResultStore, run_parallel_study
from repro.datasets import load_dataset

ARTIFACT = Path(__file__).parent.parent / "BENCH_runner.json"

#: Small full-study config: every error type on german at smoke scale.
SCALING_CONFIG = StudyConfig(
    n_sample=300,
    n_repetitions=2,
    models=("log_reg",),
    dataset_sizes={"german": 600},
)

#: Worker-pool width under test (bounded so the bench stays cheap).
WORKERS = max(2, min(4, os.cpu_count() or 1))

ERROR_TYPES = ("missing_values", "outliers", "mislabels")


def _merge_artifact(update: dict) -> None:
    payload = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    payload.update(update)
    payload["cpu_count"] = os.cpu_count()
    payload["config"] = {
        "dataset": "german",
        "error_types": list(ERROR_TYPES),
        "n_sample": SCALING_CONFIG.n_sample,
        "n_repetitions": SCALING_CONFIG.n_repetitions,
        "models": list(SCALING_CONFIG.models),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def test_single_cell_latency(benchmark):
    """One (model, tuning_seed) cell incl. shared version preparation."""
    definition, table = load_dataset("german", n_rows=600, seed=0)

    def run_cell() -> int:
        store = ResultStore()
        runner = ExperimentRunner(SCALING_CONFIG, store)
        return runner.run_repetition_cells(
            definition, table, "mislabels", 0, [("log_reg", 0)]
        )

    added = benchmark(run_cell)
    assert added == 1
    _merge_artifact(
        {
            "single_cell": {
                "mean_s": benchmark.stats.stats.mean,
                "stddev_s": benchmark.stats.stats.stddev,
            }
        }
    )


def test_worker_scaling(benchmark, tmp_path):
    """Serial vs sharded-pool wall clock for the small full study."""

    def run_study(store: ResultStore, workers: int) -> int:
        return run_parallel_study(
            SCALING_CONFIG,
            store,
            workers=workers,
            datasets=("german",),
            error_types=ERROR_TYPES,
        )

    start = time.perf_counter()
    serial_added = run_study(ResultStore(tmp_path / "serial" / "study.json"), 1)
    serial_s = time.perf_counter() - start
    assert serial_added > 0

    fresh = itertools.count()

    def setup():
        directory = tmp_path / f"parallel{next(fresh)}"
        return (ResultStore(directory / "study.json"), WORKERS), {}

    benchmark.pedantic(run_study, setup=setup, rounds=3, iterations=1)
    parallel_s = benchmark.stats.stats.mean
    speedup = serial_s / parallel_s
    _merge_artifact(
        {
            "scaling": {
                "workers": WORKERS,
                "records": serial_added,
                "serial_s": serial_s,
                "parallel_mean_s": parallel_s,
                "speedup": speedup,
            }
        }
    )
    # the guarantee is hardware-dependent; only sanity-check where the
    # machine can actually run units concurrently
    if (os.cpu_count() or 1) >= 4:
        assert speedup > 1.0
