"""Runner scaling benchmarks: cell latency, backend sweeps, transport.

Measures, and appends to ``BENCH_runner.json`` at the repo root:

- the latency of one repetition cell — the work unit the parallel
  scheduler ships to workers;
- the wall clock of a small full study (german, all three error
  types) swept over ``workers`` 1→N for every executor backend
  (serial / process / thread), with the peak RSS observed after each
  (backend, workers) point and a cross-backend byte-identity check of
  the resulting stores;
- the dataset *ship time* for one study round on a 2-worker pool
  under the pickle transport (the table is serialised into every
  task and deserialised in every worker) versus the shared-memory
  transport (publish once, then one zero-copy attach per worker —
  workers cache the attached table) — the cost the shm transport
  exists to remove.

Speedup from parallelism tracks the hardware: the artifact records
``cpu_count``, and wall-clock speedup > 1 is only asserted with ≥4
cores (on a single-core box the pool's process overhead makes the
parallel path *slower*; the transport comparison is hardware-
independent and is asserted everywhere).

Run with ``pytest benchmarks/bench_runner_scaling.py --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import pickle
import resource
import time
from pathlib import Path

from repro import ExperimentRunner, StudyConfig
from repro.benchmark import (
    ExecutorOptions,
    ResultStore,
    attach_table,
    publish_table,
    run_parallel_study,
    shared_memory_available,
)
from repro.benchmark.transport import unlink_segments
from repro.datasets import load_dataset
from repro.testing.fixtures import store_fingerprint

ARTIFACT = Path(__file__).parent.parent / "BENCH_runner.json"

#: Small full-study config: every error type on german at smoke scale.
SCALING_CONFIG = StudyConfig(
    n_sample=300,
    n_repetitions=2,
    models=("log_reg",),
    dataset_sizes={"german": 600},
)

#: Upper end of the worker sweep (bounded so the bench stays cheap).
MAX_WORKERS = max(2, min(4, os.cpu_count() or 1))

#: Rows of the table used by the transport ship-time comparison —
#: large enough that serialisation cost dominates timer noise.
TRANSPORT_ROWS = 50_000

ERROR_TYPES = ("missing_values", "outliers", "mislabels")


def _merge_artifact(update: dict) -> None:
    payload = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    payload.update(update)
    payload["cpu_count"] = os.cpu_count()
    payload["config"] = {
        "dataset": "german",
        "error_types": list(ERROR_TYPES),
        "n_sample": SCALING_CONFIG.n_sample,
        "n_repetitions": SCALING_CONFIG.n_repetitions,
        "models": list(SCALING_CONFIG.models),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def _peak_rss_kb() -> int:
    """Peak resident set of this process and its reaped children (KiB)."""
    return max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )


def test_single_cell_latency(benchmark):
    """One (model, tuning_seed) cell incl. shared version preparation."""
    definition, table = load_dataset("german", n_rows=600, seed=0)

    def run_cell() -> int:
        store = ResultStore()
        runner = ExperimentRunner(SCALING_CONFIG, store)
        return runner.run_repetition_cells(
            definition, table, "mislabels", 0, [("log_reg", 0)]
        )

    added = benchmark(run_cell)
    assert added == 1
    _merge_artifact(
        {
            "single_cell": {
                "mean_s": benchmark.stats.stats.mean,
                "stddev_s": benchmark.stats.stats.stddev,
            }
        }
    )


def test_backend_worker_sweep(tmp_path):
    """Wall clock of the small full study, workers 1→N per backend."""

    def run_study(directory: Path, backend: str, workers: int) -> tuple[int, float]:
        store = ResultStore(directory / "study.json")
        options = ExecutorOptions(backend=backend)
        start = time.perf_counter()
        added = run_parallel_study(
            SCALING_CONFIG,
            store,
            workers=workers,
            datasets=("german",),
            error_types=ERROR_TYPES,
            options=options,
        )
        return added, time.perf_counter() - start

    sweeps: dict[str, dict] = {}
    fingerprints: dict[str, dict[str, bytes]] = {}
    records = None
    serial_s = None
    run_index = 0
    for backend in ("serial", "process", "thread"):
        worker_points = (1,) if backend == "serial" else tuple(
            range(1, MAX_WORKERS + 1)
        )
        points: dict[str, dict] = {}
        for workers in worker_points:
            directory = tmp_path / f"run{run_index}"
            run_index += 1
            added, elapsed = run_study(directory, backend, workers)
            assert added > 0
            records = added
            if backend == "serial":
                serial_s = elapsed
            point = {"wall_s": elapsed}
            if serial_s is not None:
                point["speedup_vs_serial"] = serial_s / elapsed
            # per (backend, workers); ru_maxrss is a process-lifetime
            # high-water mark, so within a sweep the value is monotone —
            # a point can only show growth caused at or before it
            point["peak_rss_kb"] = _peak_rss_kb()
            points[str(workers)] = point
            fingerprints.setdefault(
                backend, store_fingerprint(directory / "study.json")
            )
        sweeps[backend] = {"workers": points}
    byte_identical = (
        fingerprints["serial"]
        == fingerprints["process"]
        == fingerprints["thread"]
    )
    assert byte_identical, "stores diverged across backends"
    _merge_artifact(
        {
            "scaling": {
                "records": records,
                "serial_s": serial_s,
                "backends": sweeps,
                "byte_identical_across_backends": byte_identical,
            }
        }
    )
    # wall-clock speedup is hardware-dependent; only assert where the
    # machine can actually run units concurrently
    if (os.cpu_count() or 1) >= 4:
        best = max(
            point["speedup_vs_serial"]
            for sweep in sweeps.values()
            for point in sweep["workers"].values()
        )
        assert best > 1.0


def test_transport_ship_time(benchmark):
    """Dataset ship cost for one study round: pickle vs shared memory.

    Models exactly what the executor pays per dataset: the pickle
    transport serialises the table into *every* task and deserialises
    it in *every* worker — ``error_types x n_repetitions`` round trips
    for the bench config — while the shm transport publishes the
    column blocks once and each worker attaches zero-copy views once
    (attaches are cached per worker process for the pool's lifetime).
    """
    assert shared_memory_available(), "shm transport unavailable on this box"
    _definition, table = load_dataset("german", n_rows=TRANSPORT_ROWS, seed=0)
    n_workers = 2
    n_tasks = len(ERROR_TYPES) * SCALING_CONFIG.n_repetitions

    start = time.perf_counter()
    for _ in range(n_tasks):
        payload = pickle.dumps(table, protocol=pickle.HIGHEST_PROTOCOL)
        shipped = pickle.loads(payload)
    pickle_s = time.perf_counter() - start
    assert shipped.n_rows == TRANSPORT_ROWS

    def shm_ship():
        ref, segments = publish_table(table)
        try:
            for _ in range(n_workers):
                attached, _handles = attach_table(ref)
            return attached
        finally:
            unlink_segments(segments)

    attached = benchmark(shm_ship)
    assert attached.n_rows == TRANSPORT_ROWS
    shm_s = benchmark.stats.stats.mean
    speedup = pickle_s / shm_s
    _merge_artifact(
        {
            "transport": {
                "rows": TRANSPORT_ROWS,
                "workers": n_workers,
                "tasks": n_tasks,
                "pickle_ship_s": pickle_s,
                "shm_ship_s": shm_s,
                "speedup": speedup,
            }
        }
    )
    assert speedup > 1.7, (
        f"shm transport should beat pickle shipping by >=1.7x, got {speedup:.2f}x"
    )
