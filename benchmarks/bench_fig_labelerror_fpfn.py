"""Section III drill-down: FP/FN breakdown of predicted label errors.

The paper reports that in the heart dataset the share of predicted
false positives among flagged tuples was significantly higher for the
privileged group (57.7% vs 52.2%), with the trend reversed for false
negatives. This bench reproduces that breakdown for every dataset's
first sensitive attribute.
"""

from conftest import save_artifact

from repro import DisparityAnalysis


def build_report(disparity_tables) -> str:
    analysis = DisparityAnalysis(random_state=0)
    lines = [
        "SECTION III: PREDICTED LABEL ERRORS — FP/FN SHARES PER GROUP",
        "(FP = flagged tuple whose given label is positive)",
        "",
    ]
    for name, (definition, table) in disparity_tables.items():
        spec = definition.group_specs[0]
        breakdown = analysis.label_error_breakdown(definition, table, spec)
        lines.append(
            f"{name} / {spec.key}:  "
            f"priv {100 * breakdown['privileged_fp_share']:.1f}% FP / "
            f"{100 * breakdown['privileged_fn_share']:.1f}% FN   "
            f"dis {100 * breakdown['disadvantaged_fp_share']:.1f}% FP / "
            f"{100 * breakdown['disadvantaged_fn_share']:.1f}% FN"
        )
    return "\n".join(lines)


def test_fig_labelerror_fpfn(benchmark, disparity_tables):
    text = benchmark.pedantic(
        build_report, args=(disparity_tables,), rounds=1, iterations=1
    )
    save_artifact("fig_labelerror_fpfn.txt", text)
    assert "heart" in text
