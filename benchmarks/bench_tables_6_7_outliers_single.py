"""Tables VI & VII: outlier cleaning, single-attribute groups."""

from _impact_bench import run_impact_bench


def test_tables_6_7_outliers_single(benchmark, study_store):
    text = run_impact_bench(
        benchmark,
        study_store,
        "tables_6_7_outliers_single.txt",
        [
            ("VI", "outliers", "PP", False),
            ("VII", "outliers", "EO", False),
        ],
    )
    assert "TABLE VI" in text and "TABLE VII" in text
