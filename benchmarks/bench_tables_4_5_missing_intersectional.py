"""Tables IV & V: missing-value cleaning, intersectional groups."""

from _impact_bench import run_impact_bench


def test_tables_4_5_missing_intersectional(benchmark, study_store):
    text = run_impact_bench(
        benchmark,
        study_store,
        "tables_4_5_missing_intersectional.txt",
        [
            ("IV", "missing_values", "PP", True),
            ("V", "missing_values", "EO", True),
        ],
    )
    assert "TABLE IV" in text and "TABLE V" in text
