"""Populate the shared bench result store (resumable).

Scale: n_sample=3000 with a 40% test split; 12 repetitions for
missing values and mislabels, 8 for outliers (which have 10 model
versions per repetition). The store is keyed per run, so re-running
this script resumes instead of recomputing.
"""
from pathlib import Path

from repro import StudyConfig, ExperimentRunner
from repro.benchmark import ResultStore
from repro.datasets import DATASET_NAMES

STORE_PATH = Path(__file__).parent / "_results" / "study.json"

CONFIGS = {
    "missing_values": StudyConfig(n_sample=3_000, test_fraction=0.4, n_repetitions=12),
    "mislabels": StudyConfig(n_sample=3_000, test_fraction=0.4, n_repetitions=12),
    "outliers": StudyConfig(n_sample=3_000, test_fraction=0.4, n_repetitions=8),
}


def main() -> None:
    store = ResultStore(STORE_PATH)
    for error_type, config in CONFIGS.items():
        runner = ExperimentRunner(config, store)
        for dataset in DATASET_NAMES:
            added = runner.run_dataset_error(dataset, error_type)
            print(f"{dataset}/{error_type}: +{added} (total {len(store)})", flush=True)
            if added:
                store.save()
    print("study complete:", len(store), "records", flush=True)


if __name__ == "__main__":
    main()
