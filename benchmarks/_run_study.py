"""Populate the shared bench result store (resumable).

Scale: n_sample=3000 with a 40% test split; 12 repetitions for
missing values and mislabels, 8 for outliers (which have 10 model
versions per repetition). The store is keyed per run, so re-running
this script resumes instead of recomputing — including records
recovered from JSONL journal shards of an interrupted parallel run.

``--workers N`` shards the pending runs across a multiprocessing
pool; the resulting store is byte-identical to a serial run.
"""
import argparse
from pathlib import Path

from repro import StudyConfig, ExperimentRunner
from repro.benchmark import ResultStore, run_parallel_study
from repro.datasets import DATASET_NAMES

STORE_PATH = Path(__file__).parent / "_results" / "study.json"

CONFIGS = {
    "missing_values": StudyConfig(n_sample=3_000, test_fraction=0.4, n_repetitions=12),
    "mislabels": StudyConfig(n_sample=3_000, test_fraction=0.4, n_repetitions=12),
    "outliers": StudyConfig(n_sample=3_000, test_fraction=0.4, n_repetitions=8),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (>1 runs the sharded parallel executor)",
    )
    args = parser.parse_args()
    store = ResultStore(STORE_PATH)
    for error_type, config in CONFIGS.items():
        if args.workers > 1:
            added = run_parallel_study(
                config,
                store,
                workers=args.workers,
                error_types=(error_type,),
                progress=lambda line: print(line, flush=True),
            )
            print(f"{error_type}: +{added} (total {len(store)})", flush=True)
            continue
        runner = ExperimentRunner(config, store)
        for dataset in DATASET_NAMES:
            added = runner.run_dataset_error(dataset, error_type)
            print(f"{dataset}/{error_type}: +{added} (total {len(store)})", flush=True)
            if added:
                store.save()
    print("study complete:", len(store), "records", flush=True)


if __name__ == "__main__":
    main()
