"""Purge and re-run the mislabel records (after a detector fix)."""
from pathlib import Path
import json

from repro import StudyConfig, ExperimentRunner
from repro.benchmark import ResultStore
from repro.datasets import DATASET_NAMES

STORE_PATH = Path(__file__).parent / "_results" / "study.json"


def main() -> None:
    payload = json.loads(STORE_PATH.read_text())
    kept = [r for r in payload["records"] if r["error_type"] != "mislabels"]
    print(f"dropping {len(payload['records']) - len(kept)} mislabel records")
    STORE_PATH.write_text(json.dumps({"records": kept}, indent=1))

    store = ResultStore(STORE_PATH)
    config = StudyConfig(n_sample=3_000, test_fraction=0.4, n_repetitions=12)
    runner = ExperimentRunner(config, store)
    for dataset in DATASET_NAMES:
        added = runner.run_dataset_error(dataset, "mislabels")
        print(f"{dataset}/mislabels: +{added} (total {len(store)})", flush=True)
        if added:
            store.save()
    print("mislabels rerun complete", flush=True)


if __name__ == "__main__":
    main()
