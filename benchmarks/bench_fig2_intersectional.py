"""Figure 2: intersectional disparity analysis (RQ1).

Same analysis as Figure 1 for the intersectionally privileged vs
intersectionally disadvantaged groups (credit is excluded: it has a
single sensitive attribute).
"""

from conftest import save_artifact

from repro import DisparityAnalysis
from repro.reporting import render_disparity_figure


def build_figure(disparity_tables) -> str:
    analysis = DisparityAnalysis(alpha=0.05, random_state=0)
    findings = []
    for name, (definition, table) in disparity_tables.items():
        findings.extend(analysis.intersectional(definition, table))
    return render_disparity_figure(
        findings,
        "FIG 2: INTERSECTIONAL ANALYSIS — disparate proportions of tuples "
        "flagged\nfor the intersectionally privileged and disadvantaged groups "
        "(* = significant, G² at p=.05)",
    )


def test_fig2_intersectional(benchmark, disparity_tables):
    text = benchmark.pedantic(
        build_figure, args=(disparity_tables,), rounds=1, iterations=1
    )
    save_artifact("fig2_intersectional.txt", text)
    assert "adult / sex_x_race" in text
    # credit has one sensitive attribute and must not appear
    assert "credit" not in text
